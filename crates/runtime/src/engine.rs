//! The multi-tenant execution engine.
//!
//! A discrete-event simulation of co-located DNN tasks on the
//! NPU-integrated SoC of Table II. Each task is a state machine that
//! acquires an NPU, walks its model's layers, and for every layer
//! executes the phase plan produced by the mapper. All tasks share the
//! DRAM channels and the shared cache, which is where the multi-tenant
//! interference — and CaMDN's advantage — comes from.
//!
//! The engine core is policy-agnostic: every scheduling choice (cache
//! pages, bandwidth shares, NPU groups) is delegated to a boxed
//! [`Policy`] through its hooks, and the workload's
//! timing comes from a [`Workload`] scenario. The five
//! systems evaluated in the paper are the built-in policies named by
//! [`PolicyKind`]; use [`Simulation::builder`](crate::Simulation) to
//! assemble and run a configuration.

use crate::components::EngineComponents;
use crate::error::{BudgetKind, EngineError};
use crate::fault::{
    FaultKind, FaultPlan, CHANNEL_DOWN_SCALE, MAX_INFERENCE_RETRIES, RETRY_BACKOFF_CYCLES,
};
use crate::layout::TaskLayout;
use crate::policies::{
    builtin_policy, AllocFailure, EpochSlot, InstallEvent, PartitionCtx, Policy,
    PolicyCapabilities, Selection,
};
use crate::result::{DetailLevel, QueueSample, RunDetail, RunOutput, RunSummary, TaskSummary};
use crate::scenario::Workload;
use crate::sched::Scheduler;
use crate::task::{InferenceRecord, Task, TaskState};
use camdn_cache::{CacheScratchPool, Nec, SharedCache};
use camdn_common::config::SocConfig;
use camdn_common::stats::Histogram;
use camdn_common::types::{cycles_to_ms, ms_to_cycles, Cycle};
use camdn_common::SimRng;
use camdn_core::{
    install_region, resolve_candidate, teardown_region, CandidateRef, Decision, PageAllocator,
    RegionError,
};
use camdn_dram::DramModel;
use camdn_mapper::{
    lower, map_model, LayerPlan, LowerMode, MapperConfig, ModelMapping, PlanCache, PlanSizes,
    Route, TensorKind,
};
use camdn_models::{Model, WeightClass};
use camdn_npu::NpuCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel task id marking a fault event in the event queue. Pushed
/// before task arrivals, so the FIFO tie-break applies same-cycle
/// faults before any task work at that cycle.
const FAULT_EVENT: u32 = u32::MAX;

/// Wall-clock budget polling stride (events between `Instant::now()`
/// calls): cheap enough to never show in profiles, fine-grained enough
/// that an overrunning run stops within milliseconds of its budget.
const WALL_CHECK_STRIDE: u32 = 4096;

/// Names one of the five built-in system configurations.
///
/// Custom systems implement [`Policy`] instead; this
/// enum remains the convenient way to pick a built-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Plain shared transparent cache, no resource scheduling.
    SharedBaseline,
    /// Dynamic memory-bandwidth partitioning (MoCA).
    Moca,
    /// Dynamic NPU + bandwidth co-allocation (AuRORA).
    Aurora,
    /// CaMDN architecture with static equal cache split.
    CamdnHwOnly,
    /// Full CaMDN co-design (Algorithm 1).
    CamdnFull,
}

impl PolicyKind {
    /// All built-in kinds, in the paper's presentation order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::SharedBaseline,
        PolicyKind::Moca,
        PolicyKind::Aurora,
        PolicyKind::CamdnHwOnly,
        PolicyKind::CamdnFull,
    ];

    /// True for the two CaMDN variants (NPU-controlled cache).
    pub fn is_camdn(&self) -> bool {
        matches!(self, PolicyKind::CamdnHwOnly | PolicyKind::CamdnFull)
    }

    /// Display label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::SharedBaseline => "Baseline",
            PolicyKind::Moca => "MoCA",
            PolicyKind::Aurora => "AuRORA",
            PolicyKind::CamdnHwOnly => "CaMDN(HW-only)",
            PolicyKind::CamdnFull => "CaMDN(Full)",
        }
    }

    /// Registry identifier of the built-in
    /// (`baseline`/`moca`/`aurora`/`camdn-hw`/`camdn-full`).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::SharedBaseline => "baseline",
            PolicyKind::Moca => "moca",
            PolicyKind::Aurora => "aurora",
            PolicyKind::CamdnHwOnly => "camdn-hw",
            PolicyKind::CamdnFull => "camdn-full",
        }
    }
}

/// Engine configuration of the original (pre-builder) API.
#[deprecated(
    since = "0.2.0",
    note = "assemble runs with `Simulation::builder()` instead"
)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// SoC parameters (Table II).
    pub soc: SocConfig,
    /// System configuration to simulate.
    pub policy: PolicyKind,
    /// RNG seed (dispatch jitter, NPU choice).
    pub seed: u64,
    /// Inferences per task.
    pub rounds_per_task: u32,
    /// Leading inferences per task excluded from statistics (cache
    /// warm-up).
    pub warmup_rounds: u32,
    /// QoS mode: deadline scale over Table I targets (0.8 = QoS-H,
    /// 1.0 = QoS-M, 1.2 = QoS-L). `None` = closed-loop speedup mode.
    pub qos_scale: Option<f64>,
    /// Bandwidth/NPU reallocation epoch for MoCA/AuRORA/CaMDN-QoS.
    pub epoch_cycles: Cycle,
    /// Offline mapper settings.
    pub mapper: MapperConfig,
}

#[allow(deprecated)]
impl EngineConfig {
    /// Speedup-experiment configuration (Section IV-A4) for a policy.
    pub fn speedup(policy: PolicyKind) -> Self {
        EngineConfig {
            soc: SocConfig::paper_default(),
            policy,
            seed: 0xCA3D41,
            rounds_per_task: 3,
            warmup_rounds: 1,
            qos_scale: None,
            epoch_cycles: 200_000,
            mapper: MapperConfig::paper_default(),
        }
    }

    /// QoS-experiment configuration for a policy at a deadline scale.
    pub fn qos(policy: PolicyKind, scale: f64) -> Self {
        EngineConfig {
            qos_scale: Some(scale),
            ..EngineConfig::speedup(policy)
        }
    }

    pub(crate) fn params(&self) -> SimParams {
        SimParams {
            soc: self.soc,
            seed: self.seed,
            warmup_rounds: self.warmup_rounds,
            qos_scale: self.qos_scale,
            epoch_cycles: self.epoch_cycles,
            mapper: self.mapper.clone(),
            reference_model: false,
            // The pre-split API always returned the per-task table.
            detail: DetailLevel::Tasks,
            queue_sample_cycles: None,
            fault_plan: None,
            max_sim_cycles: None,
            max_wall: None,
            admission_control: false,
            legacy_scheduler: false,
        }
    }
}

/// Policy-independent engine parameters (the builder assembles these).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SimParams {
    pub soc: SocConfig,
    pub seed: u64,
    pub warmup_rounds: u32,
    pub qos_scale: Option<f64>,
    pub epoch_cycles: Cycle,
    pub mapper: MapperConfig,
    /// Route all memory-system timing through the per-line reference
    /// model instead of the batched fast paths (differential testing
    /// and benchmarking only — results are bit-identical).
    pub reference_model: bool,
    /// How much output to retain ([`RunSummary`] only, plus the
    /// per-task table, or everything including latency histograms).
    pub detail: DetailLevel,
    /// Sample the outstanding-request depth every this many cycles
    /// into [`RunDetail::queue_depth`](crate::RunDetail) (`None` — the
    /// default — records nothing and leaves the run loop untouched).
    pub queue_sample_cycles: Option<Cycle>,
    /// Fault schedule applied at event timestamps (`None` — the
    /// default — leaves the run loop untouched and results bit-for-bit
    /// identical to a fault-free engine).
    pub fault_plan: Option<FaultPlan>,
    /// Simulated-cycle budget: the run stops with a typed
    /// [`EngineError::BudgetExceeded`] partial result once an event
    /// past this cycle pops. Deterministic.
    pub max_sim_cycles: Option<Cycle>,
    /// Wall-clock budget, polled every [`WALL_CHECK_STRIDE`] events.
    /// Where the run stops depends on host speed — use
    /// `max_sim_cycles` when determinism matters.
    pub max_wall: Option<Duration>,
    /// Deadline-aware admission control: shed open-loop QoS arrivals
    /// whose predicted completion already misses the deadline.
    pub admission_control: bool,
    /// Drive the run with the retained legacy monolithic advance loop
    /// instead of the component-structured one. Results are bit-for-bit
    /// identical either way (`sched_equivalence.rs` is the gate); the
    /// knob exists so the differential suite can hold the two loops
    /// against each other.
    pub legacy_scheduler: bool,
}

/// The multi-tenant discrete-event engine.
///
/// This is the low-level API: it is policy-agnostic and fully
/// assembled by [`Simulation::builder`](crate::Simulation::builder),
/// which is what most callers want.
pub struct Engine {
    params: SimParams,
    policy: Box<dyn Policy>,
    caps: PolicyCapabilities,
    label: String,
    models: Vec<Model>,
    /// Shared (possibly cache-served) mapping per distinct model.
    mappings: Vec<Arc<ModelMapping>>,
    tasks: Vec<Task>,
    /// Inference rounds each task will run in total.
    rounds_target: Vec<u32>,
    /// Absolute arrival cycles per task. Closed-loop tasks carry a
    /// single dispatch-jitter entry (later rounds re-issue
    /// immediately); open-loop tasks carry their full request schedule.
    arrivals: Vec<Vec<Cycle>>,
    closed_loop: bool,
    npus_free: Vec<bool>,
    /// Maintained count of `true` entries in `npus_free` (O(1) dispatch
    /// checks instead of a scan per event).
    free_npus: usize,
    /// Reused dispatch scratch (free-NPU id shuffle buffer).
    scratch_ids: Vec<usize>,
    /// Reused epoch scratch (per-task slots handed to the policy).
    slots_scratch: Vec<EpochSlot>,
    npu_cores: Vec<NpuCore>,
    dram: DramModel,
    cache: SharedCache,
    nec: Nec,
    alloc: PageAllocator,
    /// The master event heap (time-ordered, FIFO among ties).
    events: Scheduler<u32>,
    rng: SimRng,
    npu_waiters: Vec<u32>,
    page_waiters: Vec<u32>,
    /// Rough isolated-latency estimate per model (for urgency).
    iso_est: Vec<Cycle>,
    /// Queue-depth timeline (populated only when
    /// `params.queue_sample_cycles` is set).
    queue_samples: Vec<QueueSample>,
    /// Per-NPU failed flag (`params.fault_plan`). A failed NPU is out
    /// of the free pool until its `NpuUp` event.
    npu_failed: Vec<bool>,
    /// Scheduling state of the phase components (fault cursor, epoch
    /// boundary, sampler clock, NPU clock domain); see
    /// `crate::components`.
    comps: EngineComponents,
    now: Cycle,
    started: bool,
}

impl Engine {
    /// Builds an engine with one task per entry of `task_models`,
    /// running the built-in system named by `cfg.policy`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (e.g. an empty
    /// workload); the builder path reports [`EngineError`] instead.
    #[deprecated(
        since = "0.2.0",
        note = "assemble runs with `Simulation::builder()` instead"
    )]
    #[allow(deprecated)]
    pub fn new(cfg: EngineConfig, task_models: &[Model]) -> Self {
        let workload = Workload::closed(task_models.to_vec(), cfg.rounds_per_task);
        Engine::with_policy(
            cfg.params(),
            builtin_policy(cfg.policy),
            &workload,
            None,
            None,
        )
        // camdn-lint: allow(panic-in-lib, reason = "deprecated pre-builder shim; its documented contract is to panic on invalid configs")
        .expect("invalid engine configuration")
    }

    /// Builds an engine from parameters, a policy instance and a
    /// workload scenario. Model mappings are served from `plan_cache`
    /// when one is supplied (sweeps share one across cells), and the
    /// shared cache draws its tag planes from `cache_scratch` when a
    /// pool is supplied (sweep workers reuse them across cells);
    /// results are bit-identical either way.
    pub(crate) fn with_policy(
        params: SimParams,
        mut policy: Box<dyn Policy>,
        workload: &Workload,
        plan_cache: Option<&PlanCache>,
        cache_scratch: Option<Arc<CacheScratchPool>>,
    ) -> Result<Self, EngineError> {
        workload.validate()?;
        if params.soc.npu.cores == 0 {
            return Err(EngineError::InvalidConfig(
                "the SoC needs at least one NPU core".into(),
            ));
        }
        if params.soc.dram.channels == 0 {
            return Err(EngineError::InvalidConfig(
                "the DRAM needs at least one channel".into(),
            ));
        }
        params
            .soc
            .cache
            .validate()
            .map_err(EngineError::InvalidConfig)?;
        if let Some(plan) = &params.fault_plan {
            plan.validate_for(params.soc.npu.cores, params.soc.dram.channels)?;
        }
        if workload.models().len() >= FAULT_EVENT as usize {
            return Err(EngineError::InvalidConfig(
                "task count collides with the fault-event sentinel id".into(),
            ));
        }
        // A closed-loop run whose rounds never exceed the warm-up would
        // return all-zero statistics with no hint anything is wrong.
        if let Some(rounds) = workload.rounds_hint() {
            let closed = matches!(workload.arrival(), crate::ArrivalProcess::Closed { .. });
            if closed && rounds <= params.warmup_rounds {
                return Err(EngineError::InvalidConfig(format!(
                    "warmup_rounds ({}) leaves no measured rounds for a {}-round closed workload",
                    params.warmup_rounds, rounds
                )));
            }
        }
        let task_models = workload.models();
        let caps = policy.capabilities();
        let label = policy.label().to_string();

        let cache_cfg = params.soc.cache;
        let mut cache = match cache_scratch {
            Some(pool) => SharedCache::with_scratch(&cache_cfg, pool),
            None => SharedCache::new(&cache_cfg),
        };
        let mut dram = DramModel::new(params.soc.dram, cache_cfg.line_bytes);
        cache.set_reference_model(params.reference_model);
        dram.set_reference_model(params.reference_model);
        let nec = Nec::new(&cache_cfg);
        if caps.partitions_cache {
            cache.partition_ways(cache_cfg.npu_ways, 0, &mut dram);
        }
        let alloc = PageAllocator::new(nec.first_pcpn(), nec.npu_pages());

        // Distinct models are mapped once and shared (and, under a
        // sweep's plan cache, once per *grid* rather than per cell).
        let mut models: Vec<Model> = Vec::new();
        let mut mappings: Vec<Arc<ModelMapping>> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        let mut tasks = Vec::with_capacity(task_models.len());
        for (tid, m) in task_models.iter().enumerate() {
            let midx = *index.entry(m.name.clone()).or_insert_with(|| {
                models.push(m.clone());
                mappings.push(match plan_cache {
                    Some(cache) => cache.map_model(m, &params.mapper),
                    None => Arc::new(map_model(m, &params.mapper)),
                });
                models.len() - 1
            });
            tasks.push(Task::new(tid as u32, midx, TaskLayout::new(tid as u32, m)));
        }
        let iso_est = mappings
            .iter()
            .map(|mm| mm.baseline.iter().map(|c| c.est_cycles).sum())
            .collect();

        let n = task_models.len();
        policy.partition(&PartitionCtx {
            num_tasks: n,
            npu_pages: nec.npu_pages(),
            npu_cores: params.soc.npu.cores,
            qos: params.qos_scale.is_some(),
        });

        // Arrival schedules are drawn in task order so the run is a
        // deterministic function of (workload, seed).
        let mut rng = SimRng::new(params.seed);
        let mut arrivals = Vec::with_capacity(n);
        let mut rounds_target = Vec::with_capacity(n);
        // Only Closed re-issues immediately; Poisson and Bursty tasks
        // honor their drawn arrival times.
        let closed_loop = matches!(workload.arrival(), crate::ArrivalProcess::Closed { .. });
        for tid in 0..n {
            let sched = workload.draw_arrivals(tid, &mut rng);
            rounds_target.push(if closed_loop {
                workload
                    .rounds_hint()
                    // camdn-lint: allow(panic-in-lib, reason = "closed_loop is true only for workloads built with a fixed round count, so rounds_hint is Some")
                    .expect("closed-loop workloads carry a fixed round count")
            } else {
                sched.len() as u32
            });
            arrivals.push(sched);
        }

        let cpt_entries = (cache_cfg.total_bytes / cache_cfg.page_bytes) as u32;
        Ok(Engine {
            caps,
            label,
            policy,
            rng,
            arrivals,
            rounds_target,
            closed_loop,
            npus_free: vec![true; params.soc.npu.cores as usize],
            free_npus: params.soc.npu.cores as usize,
            scratch_ids: Vec::with_capacity(params.soc.npu.cores as usize),
            slots_scratch: Vec::with_capacity(task_models.len()),
            npu_cores: (0..params.soc.npu.cores)
                .map(|i| NpuCore::new(i, params.soc.npu, cpt_entries, cache_cfg.page_bytes))
                .collect(),
            events: Scheduler::new(),
            npu_waiters: Vec::new(),
            page_waiters: Vec::new(),
            queue_samples: Vec::new(),
            npu_failed: vec![false; params.soc.npu.cores as usize],
            comps: EngineComponents::new(params.epoch_cycles, params.queue_sample_cycles),
            now: 0,
            started: false,
            params,
            models,
            mappings,
            tasks,
            dram,
            cache,
            nec,
            alloc,
            iso_est,
        })
    }

    /// Overrides Algorithm 1's look-ahead fraction (paper default 0.2)
    /// on policies that carry the knob; used by the ablation harness.
    pub fn set_lookahead(&mut self, factor: f64) {
        self.policy.set_lookahead(factor);
    }

    fn shares_active(&self) -> bool {
        self.params.qos_scale.is_some() && self.caps.reallocates_shares
    }

    fn groups_active(&self) -> bool {
        self.params.qos_scale.is_some() && self.caps.npu_groups
    }

    fn deadline_cycles(&self, model_idx: usize) -> Option<Cycle> {
        self.params
            .qos_scale
            .map(|s| ms_to_cycles(self.models[model_idx].qos_ms * s))
    }

    /// Arrival cycle of the task's next inference, or `None` when no
    /// arrival gates it (all rounds issued, or a closed-loop task —
    /// those re-issue immediately).
    fn next_arrival(&self, tid: u32) -> Option<Cycle> {
        if self.closed_loop {
            return None;
        }
        let t = &self.tasks[tid as usize];
        if t.rounds_done >= self.rounds_target[tid as usize] {
            return None;
        }
        self.arrivals[tid as usize]
            .get(t.rounds_done as usize)
            .copied()
    }

    /// Forwards [`SharedCache::set_tag_pass_only`] (wall-time
    /// attribution diagnostics; simulated timings are not meaningful
    /// with it enabled).
    pub(crate) fn set_tag_pass_only(&mut self, enabled: bool) {
        self.cache.set_tag_pass_only(enabled);
    }

    /// Runs the simulation to completion and aggregates the results.
    ///
    /// The run primes the master heap — fault events first (plan
    /// order), then one arrival per task in task order; insertion
    /// order is part of the determinism contract — and then drives it
    /// with either the component-structured loop
    /// ([`run_scheduled`](Self::run_scheduled), the default) or the
    /// retained legacy monolithic loop
    /// ([`run_legacy`](Self::run_legacy), behind
    /// `SimulationBuilder::legacy_scheduler`). The two are bit-for-bit
    /// equivalent; `crates/camdn/tests/sched_equivalence.rs` is the
    /// gate.
    pub fn run(&mut self) -> Result<RunOutput, EngineError> {
        if self.started {
            return Err(EngineError::InvalidConfig(
                "engine already ran; build a fresh Simulation".into(),
            ));
        }
        self.started = true;
        // Fault events go in before any arrival so the FIFO tie-break
        // applies a same-cycle fault before task work at that cycle.
        let fault_ats: Vec<Cycle> = self
            .params
            .fault_plan
            .as_ref()
            .map(|p| p.events().iter().map(|e| e.at).collect())
            .unwrap_or_default();
        for at in fault_ats {
            self.events.push(at, FAULT_EVENT);
        }
        // Closed loop: a small jitter staggers the first dispatch so
        // tasks do not execute in lock-step. Open loop: the request
        // schedule drives everything.
        for tid in 0..self.tasks.len() as u32 {
            match self.arrivals[tid as usize].first() {
                Some(&t0) => self.events.push(t0, tid),
                None => {
                    // An open-loop task may draw zero arrivals: it is
                    // done before it starts, and the policy hears about
                    // it like any other completion.
                    self.tasks[tid as usize].state = TaskState::Done;
                    self.policy.on_task_done(tid);
                }
            }
        }
        if self.params.legacy_scheduler {
            self.run_legacy()
        } else {
            self.run_scheduled()
        }
    }

    /// The component-structured advance loop (the default). Every
    /// popped master-heap event flows through the phase components in
    /// a fixed, documented order: budget guards, the sampler drains
    /// its fixed-period clock up to the event, a fault-sentinel event
    /// ticks the fault component, the lazy epoch clock fires if its
    /// boundary was reached, and finally the task state machine steps.
    /// See `docs/ENGINE.md` for the architecture.
    fn run_scheduled(&mut self) -> Result<RunOutput, EngineError> {
        // camdn-lint: allow(wall-clock-in-sim, reason = "max_wall budget guard: wall time only decides when to stop, never what the simulation computes")
        let wall_start = Instant::now();
        let mut wall_tick = 0u32;
        while let Some((now, tid)) = self.events.pop() {
            // Budget guards. The cycle budget trips on the first event
            // *past* the limit (deterministic); the wall-clock budget is
            // polled every few thousand events and depends on host
            // speed. Both surface the work done so far as a partial.
            if let Some(max) = self.params.max_sim_cycles {
                if now > max {
                    return Err(EngineError::BudgetExceeded {
                        budget: BudgetKind::SimCycles,
                        at_cycle: now,
                        partial: Box::new(self.aggregate()),
                    });
                }
            }
            if let Some(max) = self.params.max_wall {
                wall_tick = wall_tick.wrapping_add(1);
                if wall_tick.is_multiple_of(WALL_CHECK_STRIDE) && wall_start.elapsed() >= max {
                    return Err(EngineError::BudgetExceeded {
                        budget: BudgetKind::WallClock,
                        at_cycle: now,
                        partial: Box::new(self.aggregate()),
                    });
                }
            }
            // Sampler component: a fixed-period clock drained up to the
            // event (state only changes at events, so sampling just
            // before the first event at-or-past a boundary observes the
            // state *at* it).
            while let Some(at) = self.comps.sampler.next_due(now) {
                self.sample_queue_depth(at);
            }
            self.now = now.max(self.now);
            if tid == FAULT_EVENT {
                self.apply_next_fault(now)?;
                continue;
            }
            // Epoch component: a lazy clock that piggybacks on task
            // events (an idle stretch produces no empty epoch ticks).
            if self.comps.epoch.due(self.now) {
                self.rebalance_epoch();
            }
            self.step(tid, now)?;
        }
        Ok(self.aggregate())
    }

    /// The retained pre-component monolithic advance loop — the seed
    /// engine's `run` body, kept verbatim so the differential suite
    /// can hold the component-structured loop bit-for-bit against it.
    /// Selected by `SimulationBuilder::legacy_scheduler`.
    fn run_legacy(&mut self) -> Result<RunOutput, EngineError> {
        // Queue sampling walks fixed boundaries between events: state
        // only changes at events, so sampling just before the first
        // event at-or-past a boundary observes the state *at* it.
        let sample_every = self.params.queue_sample_cycles;
        let mut next_sample = sample_every.unwrap_or(0);
        // camdn-lint: allow(wall-clock-in-sim, reason = "max_wall budget guard: wall time only decides when to stop, never what the simulation computes")
        let wall_start = Instant::now();
        let mut wall_tick = 0u32;
        while let Some((now, tid)) = self.events.pop() {
            // Budget guards. The cycle budget trips on the first event
            // *past* the limit (deterministic); the wall-clock budget is
            // polled every few thousand events and depends on host
            // speed. Both surface the work done so far as a partial.
            if let Some(max) = self.params.max_sim_cycles {
                if now > max {
                    return Err(EngineError::BudgetExceeded {
                        budget: BudgetKind::SimCycles,
                        at_cycle: now,
                        partial: Box::new(self.aggregate()),
                    });
                }
            }
            if let Some(max) = self.params.max_wall {
                wall_tick = wall_tick.wrapping_add(1);
                if wall_tick.is_multiple_of(WALL_CHECK_STRIDE) && wall_start.elapsed() >= max {
                    return Err(EngineError::BudgetExceeded {
                        budget: BudgetKind::WallClock,
                        at_cycle: now,
                        partial: Box::new(self.aggregate()),
                    });
                }
            }
            if let Some(every) = sample_every {
                while next_sample <= now {
                    self.sample_queue_depth(next_sample);
                    next_sample += every;
                }
            }
            self.now = now.max(self.now);
            if tid == FAULT_EVENT {
                self.apply_next_fault(now)?;
                continue;
            }
            self.maybe_rebalance();
            self.step(tid, now)?;
        }
        Ok(self.aggregate())
    }

    /// Records one queue-depth sample: requests arrived by `at` but
    /// not yet retired, summed over all tasks. A closed-loop task's
    /// whole round budget "arrives" with its single dispatch jitter.
    fn sample_queue_depth(&mut self, at: Cycle) {
        let mut outstanding = 0u32;
        for (tid, sched) in self.arrivals.iter().enumerate() {
            let arrived = if self.closed_loop {
                match sched.first() {
                    Some(&t0) if t0 <= at => self.rounds_target[tid],
                    _ => 0,
                }
            } else {
                sched.partition_point(|&a| a <= at) as u32
            };
            outstanding += arrived.saturating_sub(self.tasks[tid].rounds_done);
        }
        self.queue_samples.push(QueueSample {
            cycle: at,
            outstanding,
        });
    }

    // ---------------------------------------------------------------
    // Scheduling epochs (policies with `reallocates_shares`)
    // ---------------------------------------------------------------

    /// Legacy-loop epoch entry point: boundary check plus the epoch
    /// tick (the component loop checks `comps.epoch.due` inline).
    fn maybe_rebalance(&mut self) {
        if !self.comps.epoch.due(self.now) {
            return;
        }
        self.rebalance_epoch();
    }

    /// The epoch component's tick: re-arm the (lazy, drifting)
    /// boundary, run the cache's epoch housekeeping, and let a
    /// share-reallocating policy redistribute bandwidth and NPU quota.
    fn rebalance_epoch(&mut self) {
        self.comps.epoch.advance(self.now);
        // Results-identical cache housekeeping rides the epoch tick:
        // the LRU age plane gets rank-compacted outside the hot tag
        // pass when its 32-bit headroom runs low. Epochs fire at the
        // same simulated times in the batched and reference engines,
        // so the twins stay bit-for-bit comparable.
        self.cache.on_epoch();
        if !self.shares_active() {
            return;
        }
        let mut slots = std::mem::take(&mut self.slots_scratch);
        slots.clear();
        for t in &self.tasks {
            // An open-loop task sitting between arrivals is not
            // competing for resources: it must not soak up bandwidth
            // or NPU quota from the tasks actually executing.
            let idle_between_arrivals = t.state == TaskState::WaitingNpu
                && self.next_arrival(t.id).is_some_and(|a| a > self.now);
            slots.push(EpochSlot {
                active: t.state != TaskState::Done && !idle_between_arrivals,
                deadline_cycles: self.deadline_cycles(t.model_idx).unwrap_or(1),
                total_layers: self.models[t.model_idx].layers.len(),
                cur_layer: t.cur_layer,
                inference_start: t.inference_start,
                iso_est_cycles: self.iso_est[t.model_idx],
                bw_share: t.bw_share,
                npu_quota: t.npu_quota,
            });
        }
        self.policy
            .on_epoch(self.now, self.npus_free.len(), &mut slots);
        for (t, s) in self.tasks.iter_mut().zip(&slots) {
            if t.state != TaskState::Done {
                t.bw_share = s.bw_share;
                t.npu_quota = s.npu_quota;
            }
        }
        self.slots_scratch = slots;
    }

    // ---------------------------------------------------------------
    // Fault injection (`params.fault_plan`)
    // ---------------------------------------------------------------

    /// Applies the next unapplied event of the fault plan, then gives
    /// the policy its topology-change hook with the surviving capacity.
    fn apply_next_fault(&mut self, now: Cycle) -> Result<(), EngineError> {
        let kind = match &self.params.fault_plan {
            Some(p) => p.events()[self.comps.fault.cursor].kind,
            // Defensive: a sentinel without a plan is a stale event.
            None => return Ok(()),
        };
        self.comps.fault.advance();
        match kind {
            FaultKind::NpuDown(n) => self.fail_npu(n as usize, now)?,
            FaultKind::NpuUp(n) => self.restore_npu(n as usize, now),
            FaultKind::DramChannelDown(c) => self
                .dram
                .set_channel_bandwidth_scale(c as usize, CHANNEL_DOWN_SCALE),
            FaultKind::DramChannelUp(c) => self.dram.set_channel_bandwidth_scale(c as usize, 1.0),
            FaultKind::DramDegrade { channel, factor } => self
                .dram
                .set_channel_bandwidth_scale(channel as usize, factor),
            // DVFS routes through the NPU clock component: the
            // throttle factor retunes the clock's rate against the
            // master clock, and every subsequent compute charge is
            // converted through it.
            FaultKind::ClockThrottle { factor } => self.comps.npu_clock.set_rate(factor),
        }
        let surviving = self.npu_failed.iter().filter(|f| !**f).count() as u32;
        let ctx = PartitionCtx {
            num_tasks: self.tasks.len(),
            npu_pages: self.nec.npu_pages(),
            // All NPUs down still hands the policy a sane divisor; no
            // work dispatches until an `NpuUp` regardless.
            npu_cores: surviving.max(1),
            qos: self.params.qos_scale.is_some(),
        };
        self.policy.on_topology_change(now, &ctx);
        Ok(())
    }

    /// Takes NPU `n` out of service: out of the free pool if idle,
    /// otherwise the inference holding it is killed and re-queued.
    fn fail_npu(&mut self, n: usize, now: Cycle) -> Result<(), EngineError> {
        if self.npu_failed[n] {
            return Ok(());
        }
        self.npu_failed[n] = true;
        if self.npus_free[n] {
            self.npus_free[n] = false;
            self.free_npus -= 1;
            return Ok(());
        }
        match self.tasks.iter().position(|t| t.npus.contains(&n)) {
            Some(tid) => self.kill_inference(tid as u32, now),
            // Held by no one and not free: already failed under a
            // racing event — nothing to do.
            None => Ok(()),
        }
    }

    /// Returns NPU `n` to service and wakes the dispatch queue.
    fn restore_npu(&mut self, n: usize, now: Cycle) {
        if !self.npu_failed[n] {
            return;
        }
        self.npu_failed[n] = false;
        self.npus_free[n] = true;
        self.free_npus += 1;
        let Engine {
            events,
            npu_waiters,
            ..
        } = self;
        for &w in npu_waiters.iter() {
            events.push(now, w);
        }
        npu_waiters.clear();
    }

    /// Kills the in-flight inference of `tid` after an NPU failure:
    /// tears down its cache grants, releases its surviving NPUs, and
    /// either re-queues the inference (bounded retries, exponential
    /// back-off in simulated time) or drops it past the retry budget.
    fn kill_inference(&mut self, tid: u32, now: Cycle) -> Result<(), EngineError> {
        let cur_layer = self.tasks[tid as usize].cur_layer;
        let primary = self.tasks[tid as usize].npus[0];
        self.tasks[tid as usize].plan = None;
        // Mirror finish_layer's teardown: LWM and LBM grants both go
        // back (a retry restarts the inference from layer 0).
        let mut released = false;
        if let Some(grant) = self.tasks[tid as usize].lwm_grant.take() {
            teardown_region(
                &grant,
                &mut self.alloc,
                &mut self.nec,
                &mut self.npu_cores[primary],
            )
            .map_err(Self::region_err(tid, cur_layer))?;
            released = true;
        }
        if let Some(grant) = self.tasks[tid as usize].lbm_grant.take() {
            teardown_region(
                &grant,
                &mut self.alloc,
                &mut self.nec,
                &mut self.npu_cores[primary],
            )
            .map_err(Self::region_err(tid, cur_layer))?;
            released = true;
        }
        self.tasks[tid as usize].lbm_block = None;
        self.tasks[tid as usize].cur_is_lbm = false;
        if released {
            self.wake_page_waiters(now);
        }
        // Surviving NPUs of the group go back to the pool; the failed
        // one stays out until its `NpuUp`.
        let mut freed = 0;
        for i in 0..self.tasks[tid as usize].npus.len() {
            let n = self.tasks[tid as usize].npus[i];
            if !self.npu_failed[n] {
                self.npus_free[n] = true;
                freed += 1;
            }
        }
        self.free_npus += freed;
        self.tasks[tid as usize].npus.clear();
        if freed > 0 {
            let Engine {
                events,
                npu_waiters,
                ..
            } = self;
            for &w in npu_waiters.iter() {
                events.push(now, w);
            }
            npu_waiters.clear();
        }
        self.page_waiters.retain(|&w| w != tid);
        let t = &mut self.tasks[tid as usize];
        t.attempt += 1;
        if t.attempt > MAX_INFERENCE_RETRIES {
            t.dropped += 1;
            t.attempt = 0;
            self.retire_without_record(tid, now);
        } else {
            t.retried += 1;
            // k-th retry backs off 50k << (k-1) simulated cycles.
            t.retry_at = now + (RETRY_BACKOFF_CYCLES << (t.attempt - 1));
            t.state = TaskState::WaitingNpu;
            let at = t.retry_at;
            self.events.push(at, tid);
        }
        Ok(())
    }

    /// Advances a task past an inference that retired without a record
    /// (dropped past the retry budget, or shed at admission): schedule
    /// the next round or finish the task.
    fn retire_without_record(&mut self, tid: u32, now: Cycle) {
        let t = &mut self.tasks[tid as usize];
        t.rounds_done += 1;
        if t.rounds_done < self.rounds_target[tid as usize] {
            t.state = TaskState::WaitingNpu;
            let at = if self.closed_loop {
                now
            } else {
                self.arrivals[tid as usize][t.rounds_done as usize].max(now)
            };
            self.events.push(at, tid);
        } else {
            t.state = TaskState::Done;
            self.policy.on_task_done(tid);
        }
    }

    // ---------------------------------------------------------------
    // Task state machine
    // ---------------------------------------------------------------

    fn step(&mut self, tid: u32, now: Cycle) -> Result<(), EngineError> {
        // `TaskState` is `Copy`: matching by value costs nothing.
        match self.tasks[tid as usize].state {
            TaskState::WaitingNpu => {
                // Stale wake (a page-release or timeout event from an
                // earlier wait): the next inference has not arrived
                // yet — its own arrival event will dispatch it.
                if self.next_arrival(tid).is_some_and(|a| now < a) {
                    return Ok(());
                }
                // Fault-retry back-off: the killed inference may not
                // re-dispatch before its retry event (always 0 — never
                // taken — without a fault plan).
                if now < self.tasks[tid as usize].retry_at {
                    return Ok(());
                }
                self.try_dispatch(tid, now)
            }
            TaskState::WaitingPages { decision } => self.try_begin_layer(tid, now, Some(decision)),
            TaskState::Running { phase_idx } => {
                // Stale wake (page-release or timeout event from an
                // earlier wait): the phase is not actually done yet.
                if now < self.tasks[tid as usize].phase_end {
                    return Ok(());
                }
                // The wake marks the end of phase `phase_idx`'s memory
                // (double buffering: its compute overlaps the next
                // phase's transfers).
                let n_phases = {
                    let t = &self.tasks[tid as usize];
                    t.plan.as_ref().map(|p| p.phases.len()).unwrap_or(0)
                };
                {
                    let t = &mut self.tasks[tid as usize];
                    if phase_idx < n_phases {
                        let plan = t.plan.as_ref().ok_or(EngineError::MissingPlan {
                            task: tid,
                            layer: t.cur_layer,
                        })?;
                        let c = plan.phases[phase_idx].compute_cycles;
                        // The NPU clock component converts local
                        // compute cycles to master cycles; its
                        // fault-free full rate is IEEE-exact, so
                        // results without a plan are untouched bit for
                        // bit.
                        let adj = self.comps.npu_clock.compute_master_cycles(c, t.group);
                        t.compute_horizon = t.compute_horizon.max(now) + adj;
                    }
                }
                if phase_idx + 1 < n_phases {
                    self.exec_phase(tid, now, phase_idx + 1)
                } else {
                    // All memory done; drain the PE pipeline then retire.
                    let drain = self.tasks[tid as usize].compute_horizon.max(now);
                    if drain > now {
                        let t = &mut self.tasks[tid as usize];
                        t.state = TaskState::Running {
                            phase_idx: n_phases,
                        };
                        t.phase_end = drain;
                        self.events.push(drain, tid);
                        Ok(())
                    } else {
                        self.finish_layer(tid, now)
                    }
                }
            }
            TaskState::Done => Ok(()),
        }
    }

    fn free_npu_count(&self) -> usize {
        debug_assert_eq!(
            self.free_npus,
            self.npus_free.iter().filter(|f| **f).count(),
            "free-NPU counter out of sync"
        );
        self.free_npus
    }

    fn try_dispatch(&mut self, tid: u32, now: Cycle) -> Result<(), EngineError> {
        // Deadline-aware admission: when even the isolated estimate —
        // a lower bound no amount of scheduling beats — can no longer
        // land the queued request inside its deadline, shed it instead
        // of burning capacity on a guaranteed miss. Open-loop QoS only:
        // closed-loop rounds have no arrival, so nothing ever queues
        // long enough to be doomed at dispatch.
        if self.params.admission_control && !self.closed_loop {
            let model_idx = self.tasks[tid as usize].model_idx;
            if let Some(deadline) = self.deadline_cycles(model_idx) {
                let arrived = self.next_arrival(tid).map_or(now, |a| a.min(now));
                if now + self.iso_est[model_idx] > arrived + deadline {
                    self.tasks[tid as usize].shed += 1;
                    self.retire_without_record(tid, now);
                    return Ok(());
                }
            }
        }
        let want = if self.groups_active() {
            self.tasks[tid as usize].npu_quota.max(1)
        } else {
            1
        };
        let free = self.free_npu_count();
        if free == 0 {
            if !self.npu_waiters.contains(&tid) {
                self.npu_waiters.push(tid);
            }
            return Ok(());
        }
        let take = (want as usize).min(free);
        // Open-loop latency is response time: it starts at the request
        // arrival, so queueing behind busy NPUs (or earlier requests of
        // the same task) is charged. Closed-loop rounds have no arrival
        // — they start at dispatch, as in the original engine.
        let started = self.next_arrival(tid).map_or(now, |a| a.min(now));
        // "Randomly dispatch each model task to one NPU": pick the
        // primary NPU at random among the free ones (scratch buffer —
        // no allocation per dispatch).
        let mut free_ids = std::mem::take(&mut self.scratch_ids);
        free_ids.clear();
        free_ids.extend((0..self.npus_free.len()).filter(|&i| self.npus_free[i]));
        self.rng.shuffle(&mut free_ids);
        free_ids.truncate(take);
        for &n in &free_ids {
            self.npus_free[n] = false;
        }
        self.free_npus -= take;
        let t = &mut self.tasks[tid as usize];
        t.npus.clear();
        t.npus.extend_from_slice(&free_ids);
        self.scratch_ids = free_ids;
        let t = &mut self.tasks[tid as usize];
        t.group = take as u32;
        t.cur_layer = 0;
        t.inference_start = started;
        t.inference_dram = 0;
        self.try_begin_layer(tid, now, None)
    }

    fn plan_sizes(&self, tid: u32) -> PlanSizes {
        let t = &self.tasks[tid as usize];
        let layer = &self.models[t.model_idx].layers[t.cur_layer];
        PlanSizes {
            weight: layer.weight_operand_bytes(),
            input: layer.input_bytes(),
            output: layer.output_bytes(),
            bias: match layer.weight_class {
                WeightClass::Static => layer.nest.bias_bytes(),
                _ => 0,
            },
        }
    }

    /// Begins the current layer of `tid`: candidate selection, page
    /// acquisition (with the policy's timeout/degrade protocol) and
    /// plan lowering.
    ///
    /// Candidates and candidate tables are matched by reference —
    /// per-layer work never clones the mapping structures.
    fn try_begin_layer(
        &mut self,
        tid: u32,
        now: Cycle,
        pending: Option<Decision>,
    ) -> Result<(), EngineError> {
        let (model_idx, cur_layer) = {
            let t = &self.tasks[tid as usize];
            (t.model_idx, t.cur_layer)
        };
        let sizes = self.plan_sizes(tid);
        let selection = match pending {
            Some(d) => Selection::Camdn(d),
            None => {
                let mct = &self.mappings[model_idx].mcts[cur_layer];
                let lbm_active = self.tasks[tid as usize].lbm_block == Some(mct.block.id);
                let idle = self.alloc.idle_pages();
                self.policy
                    .select_candidate(now, tid, mct, lbm_active, idle)
            }
        };
        let mut decision = match selection {
            Selection::Transparent => {
                // Cache-unaware candidate, transparent lowering.
                let cand = &self.mappings[model_idx].baseline[cur_layer];
                let plan = lower(cand, sizes, LowerMode::Transparent);
                return self.start_plan(tid, now, plan, false);
            }
            Selection::Camdn(d) => d,
        };

        // Disjoint field borrows: the candidate table is read while the
        // allocator/NEC/policy mutate.
        let (plan, is_lbm) = {
            let Engine {
                tasks,
                mappings,
                policy,
                alloc,
                nec,
                npu_cores,
                events,
                page_waiters,
                ..
            } = self;
            let mct = &mappings[model_idx].mcts[cur_layer];
            loop {
                let is_lbm = decision.candidate == CandidateRef::Lbm;
                let cand = resolve_candidate(mct, &decision).ok_or(EngineError::BadDecision {
                    task: tid,
                    layer: cur_layer,
                })?;
                // LBM layers past the head reuse the block grant: no pages.
                let needs_pages = decision.pneed > 0;
                // Set when this layer installs (or zero-page-enables) the
                // block's LBM region — the policy may track it.
                let mut lbm_enabled_block = None;
                if needs_pages {
                    let primary = tasks[tid as usize].npus[0];
                    match install_region(tid, cand, alloc, nec, &mut npu_cores[primary]) {
                        Ok(grant) => {
                            let t = &mut tasks[tid as usize];
                            if is_lbm {
                                t.lbm_grant = Some(grant);
                                t.lbm_block = Some(mct.block.id);
                                lbm_enabled_block = Some(mct.block.id);
                            } else {
                                t.lwm_grant = Some(grant);
                            }
                        }
                        Err(RegionError::Alloc(_)) => {
                            match policy.on_alloc_failure(now, tid, mct, &decision) {
                                AllocFailure::Degrade(d) => {
                                    decision = d;
                                    continue;
                                }
                                AllocFailure::Wait => {
                                    let t = &mut tasks[tid as usize];
                                    t.state = TaskState::WaitingPages { decision };
                                    if let Some(dl) = decision.timeout {
                                        events.push(dl, tid);
                                    }
                                    if !page_waiters.contains(&tid) {
                                        page_waiters.push(tid);
                                    }
                                    return Ok(());
                                }
                            }
                        }
                        Err(e) => {
                            return Err(EngineError::Region {
                                task: tid,
                                layer: cur_layer,
                                detail: e.to_string(),
                            })
                        }
                    }
                } else if is_lbm && mct.block.is_head {
                    // Head with zero-page LBM (empty block) — treat as enable.
                    tasks[tid as usize].lbm_block = Some(mct.block.id);
                    lbm_enabled_block = Some(mct.block.id);
                }
                page_waiters.retain(|&w| w != tid);
                // Install book-keeping (e.g. Algorithm 1's predAvailPages:
                // when this task will reallocate next, how much it needs).
                let next_pneed = mappings[model_idx]
                    .mcts
                    .get(cur_layer + 1)
                    .map(|m| m.lwm[m.lwm.len() / 2].pneed)
                    .unwrap_or(0);
                let ev = InstallEvent {
                    lbm_block: lbm_enabled_block,
                    held_pages: alloc.held_by(tid),
                    est_finish: now + cand.est_cycles,
                    next_pneed,
                };
                policy.on_install(now, tid, &ev);
                break (lower(cand, sizes, LowerMode::Camdn), is_lbm);
            }
        };
        self.start_plan(tid, now, plan, is_lbm)
    }

    fn start_plan(
        &mut self,
        tid: u32,
        now: Cycle,
        plan: LayerPlan,
        is_lbm: bool,
    ) -> Result<(), EngineError> {
        let t = &mut self.tasks[tid as usize];
        t.plan = Some(plan);
        t.cur_is_lbm = is_lbm;
        self.exec_phase(tid, now, 0)
    }

    // ---------------------------------------------------------------
    // Phase execution: the memory system interaction
    // ---------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec_phase(&mut self, tid: u32, now: Cycle, idx: usize) -> Result<(), EngineError> {
        let throttled = self.shares_active();
        let peak_bw = self.params.soc.dram.bytes_per_cycle;
        let line = self.params.soc.cache.line_bytes;
        let full_mask = self.cache.full_way_mask();
        let dram_before = self.dram.stats().total_bytes();

        // Disjoint field borrows: the task's plan/layout/grants are read
        // in place while cache/DRAM/NEC advance — the per-event clones of
        // the phase, layout and grant-page vectors are gone.
        let Engine {
            tasks,
            models,
            cache,
            dram,
            nec,
            ..
        } = self;
        let t = &tasks[tid as usize];
        let model_idx = t.model_idx;
        let cur_layer = t.cur_layer;
        let group = t.group;
        let layer = &models[model_idx].layers[cur_layer];
        let weight_is_act = layer.weight_class == WeightClass::Activation;
        let weight_is_static = layer.weight_class == WeightClass::Static;
        let input_bytes = layer.input_bytes();
        let plan = t.plan.as_ref().ok_or(EngineError::MissingPlan {
            task: tid,
            layer: cur_layer,
        })?;
        let phase = &plan.phases[idx];
        let layout = &t.layout;
        let bw_share = t.bw_share;
        let mut bw_gate = t.bw_gate;
        // Pages backing this layer's cached regions: the block grant when
        // the layer runs its LBM candidate, its own LWM grant otherwise.
        let region_pages: &[u32] = if t.cur_is_lbm {
            t.lbm_grant.as_ref().map(|g| g.pages.as_slice())
        } else {
            t.lwm_grant.as_ref().map(|g| g.pages.as_slice())
        }
        .unwrap_or(&[]);

        let cache_err = |op: &'static str| {
            move |e: camdn_cache::NecError| EngineError::Cache {
                task: tid,
                op,
                detail: e.to_string(),
            }
        };

        let mut mem_finish = now;
        for tr in &phase.transfers {
            let lines = tr.bytes.div_ceil(line);
            let addr = layout.addr_of(cur_layer, tr.tensor, weight_is_act, input_bytes, tr.offset);
            // Bandwidth regulation: DRAM-touching transfers may not start
            // before the task's bandwidth gate.
            let start = if throttled && tr.route.touches_dram() {
                now.max(bw_gate)
            } else {
                now
            };
            let multicast = group > 1 && tr.tensor == TensorKind::Weight && weight_is_static;
            let done = match tr.route {
                Route::Transparent => {
                    // A multi-NPU group fetches its weights once; the
                    // replicas hit the lines the first walk brought in
                    // and are charged in closed form (no re-walk).
                    let reps = if multicast { group } else { 1 };
                    cache
                        .access_range_multicast(
                            start, addr, tr.bytes, tr.write, full_mask, dram, reps,
                        )
                        .finish
                        .max(start)
                }
                Route::BypassRead => {
                    if multicast {
                        nec.multicast_bypass_read(start, addr, lines, group, dram, 0)
                    } else {
                        nec.bypass_read(start, addr, lines, dram, 0)
                    }
                }
                Route::BypassWrite => nec.bypass_write(start, addr, lines, dram, 0),
                Route::Fill => nec
                    .fill(start, tid, region_pages, addr, lines, dram, 0)
                    .map_err(cache_err("fill"))?,
                Route::CacheRead => {
                    if multicast {
                        nec.multicast_read(start, tid, region_pages, lines, group)
                            .map_err(cache_err("multicast read"))?
                    } else {
                        nec.read(start, tid, region_pages, lines)
                            .map_err(cache_err("read"))?
                    }
                }
                Route::CacheWrite => nec
                    .write(start, tid, region_pages, lines)
                    .map_err(cache_err("write"))?,
                Route::Writeback => nec
                    .writeback(start, tid, region_pages, addr, lines, dram, 0)
                    .map_err(cache_err("writeback"))?,
            };
            mem_finish = mem_finish.max(done);
            if throttled && tr.route.touches_dram() {
                bw_gate = start + (tr.bytes as f64 / (bw_share * peak_bw)).ceil() as Cycle;
            }
        }

        // The wake fires when this phase's memory lands; its compute is
        // charged then, overlapping the next phase's transfers (double
        // buffering).
        let end = mem_finish.max(now + 1);
        let dram_delta = dram.stats().total_bytes() - dram_before;
        let t = &mut self.tasks[tid as usize];
        t.inference_dram += dram_delta;
        t.bw_gate = bw_gate;
        t.state = TaskState::Running { phase_idx: idx };
        t.phase_end = end;
        self.events.push(end, tid);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Layer / inference retirement
    // ---------------------------------------------------------------

    /// Wakes page waiters after a release — but only those whose pending
    /// decision can now be satisfied. Waking every waiter on every
    /// release scheduled a spurious retry event per waiter per release
    /// (each of which re-ran candidate resolution just to fail again).
    fn wake_page_waiters(&mut self, now: Cycle) {
        let idle = self.alloc.idle_pages();
        let Engine {
            tasks,
            events,
            page_waiters,
            ..
        } = self;
        for &w in page_waiters.iter() {
            let satisfiable = match tasks[w as usize].state {
                TaskState::WaitingPages { decision } => decision.pneed <= idle,
                // Stale entry (task moved on): wake it so the stale
                // guard in `step` clears the event harmlessly.
                _ => true,
            };
            if satisfiable {
                events.push(now, w);
            }
        }
    }

    fn region_err(tid: u32, layer: usize) -> impl Fn(RegionError) -> EngineError {
        move |e| EngineError::Region {
            task: tid,
            layer,
            detail: e.to_string(),
        }
    }

    fn finish_layer(&mut self, tid: u32, now: Cycle) -> Result<(), EngineError> {
        let (model_idx, cur_layer) = {
            let t = &self.tasks[tid as usize];
            (t.model_idx, t.cur_layer)
        };
        let block = self.mappings[model_idx].mcts[cur_layer].block.id;
        let primary = self.tasks[tid as usize].npus[0];
        self.tasks[tid as usize].plan = None;
        let mut released = false;
        // LWM pages live for exactly one layer.
        if let Some(grant) = self.tasks[tid as usize].lwm_grant.take() {
            teardown_region(
                &grant,
                &mut self.alloc,
                &mut self.nec,
                &mut self.npu_cores[primary],
            )
            .map_err(Self::region_err(tid, cur_layer))?;
            released = true;
        }
        // LBM pages live until the block's tail layer retires.
        let t = &self.tasks[tid as usize];
        let next_block = self.mappings[model_idx]
            .mcts
            .get(cur_layer + 1)
            .map(|m| m.block.id);
        let block_ends = next_block != Some(block);
        let lbm_block_ended = t.lbm_block == Some(block) && block_ends;
        if lbm_block_ended {
            if let Some(grant) = self.tasks[tid as usize].lbm_grant.take() {
                teardown_region(
                    &grant,
                    &mut self.alloc,
                    &mut self.nec,
                    &mut self.npu_cores[primary],
                )
                .map_err(Self::region_err(tid, cur_layer))?;
                released = true;
            }
            self.tasks[tid as usize].lbm_block = None;
        }
        self.policy.on_layer_retire(now, tid, lbm_block_ended);
        if released {
            self.wake_page_waiters(now);
        }

        let t = &mut self.tasks[tid as usize];
        t.cur_layer += 1;
        if t.cur_layer < self.models[t.model_idx].layers.len() {
            self.try_begin_layer(tid, now, None)
        } else {
            self.finish_inference(tid, now);
            Ok(())
        }
    }

    fn finish_inference(&mut self, tid: u32, now: Cycle) {
        let deadline = {
            let t = &self.tasks[tid as usize];
            self.deadline_cycles(t.model_idx)
        };
        let t = &mut self.tasks[tid as usize];
        let latency = now - t.inference_start;
        t.records.push(InferenceRecord {
            latency,
            dram_bytes: t.inference_dram,
            deadline_met: deadline.map(|d| latency <= d).unwrap_or(true),
        });
        t.rounds_done += 1;
        // The retry budget is per inference: a completion resets it.
        t.attempt = 0;
        // Release the NPUs and wake queued tasks (in place: the NPU id
        // and waiter vectors are long-lived, never re-allocated).
        let released = self.tasks[tid as usize].npus.len();
        for i in 0..released {
            let n = self.tasks[tid as usize].npus[i];
            self.npus_free[n] = true;
        }
        self.free_npus += released;
        self.tasks[tid as usize].npus.clear();
        {
            let Engine {
                events,
                npu_waiters,
                ..
            } = self;
            for &w in npu_waiters.iter() {
                events.push(now, w);
            }
            npu_waiters.clear();
        }
        let t = &mut self.tasks[tid as usize];
        if t.rounds_done < self.rounds_target[tid as usize] {
            t.state = TaskState::WaitingNpu;
            // Closed loop: the next inference re-issues immediately.
            // Open loop: it starts at its arrival time (or now, when the
            // request already queued up behind a slow inference).
            let at = if self.closed_loop {
                now
            } else {
                self.arrivals[tid as usize][t.rounds_done as usize].max(now)
            };
            self.events.push(at, tid);
        } else {
            t.state = TaskState::Done;
            self.policy.on_task_done(tid);
        }
    }

    // ---------------------------------------------------------------
    // Aggregation
    // ---------------------------------------------------------------

    fn aggregate(&self) -> RunOutput {
        // Warm-up is a closed-loop concept (discard the cold leading
        // rounds of a fixed schedule). Open-loop tasks draw variable
        // request counts — skipping records there would silently zero
        // out sparse tasks' statistics.
        let skip = if self.closed_loop {
            self.params.warmup_rounds as usize
        } else {
            0
        };
        // The summary is computed from the same per-task means at every
        // detail level, so a summary-only run is bit-for-bit the
        // `summary` of a detailed run.
        let want_tasks = self.params.detail >= DetailLevel::Tasks;
        let mut hist = (self.params.detail >= DetailLevel::Full)
            .then(|| Histogram::new(&crate::result::LATENCY_HIST_EDGES));
        // The compact tail is populated at *every* detail level: it is
        // `Copy`, costs O(bins) memory, and is filled here — after the
        // event loop — so the zero-alloc hot loop is untouched.
        let mut tail = crate::result::LatencyTail::new();
        let mut tasks = Vec::with_capacity(if want_tasks { self.tasks.len() } else { 0 });
        let mut lat_sum = 0.0;
        let mut dram_sum = 0.0;
        let mut measured_tasks = 0usize;
        let mut inferences = 0usize;
        let mut sla_num = 0.0;
        let mut shed_requests = 0u64;
        let mut retried_inferences = 0u64;
        let mut dropped_inferences = 0u64;
        for t in &self.tasks {
            shed_requests += t.shed;
            retried_inferences += t.retried;
            dropped_inferences += t.dropped;
            let model = &self.models[t.model_idx];
            let mean_lat = t.mean_latency(skip);
            let mean_dram = t.mean_dram_bytes(skip);
            let measured = t.records.len().saturating_sub(skip);
            let sla = t.sla_rate(skip);
            // An open-loop task may draw no arrivals; averaging its
            // phantom 0.0 latency in would deflate the run-level means.
            if measured > 0 {
                lat_sum += mean_lat;
                dram_sum += mean_dram;
                measured_tasks += 1;
            }
            inferences += measured;
            sla_num += sla * measured as f64;
            for r in &t.records[skip.min(t.records.len())..] {
                tail.record(r.latency);
                if let Some(h) = &mut hist {
                    h.record(r.latency);
                }
            }
            if want_tasks {
                tasks.push(TaskSummary {
                    abbr: model.abbr.clone(),
                    qos_ms: model.qos_ms,
                    inferences: measured,
                    mean_latency_ms: cycles_to_ms(mean_lat as Cycle),
                    mean_dram_mb: mean_dram / 1e6,
                    sla_rate: sla,
                    shed: t.shed,
                });
            }
        }
        // Guard the division: every task may have retired nothing
        // (e.g. a workload whose rounds never exceed the warm-up).
        let n = measured_tasks.max(1) as f64;
        let cache_hit_rate = if self.caps.partitions_cache {
            let s = self.nec.stats();
            let served = s.controlled_hits();
            let moved = served
                + s.fills.get()
                + s.writebacks.get()
                + s.bypass_reads.get()
                + s.bypass_writes.get();
            if moved == 0 {
                0.0
            } else {
                served as f64 / moved as f64
            }
        } else {
            self.cache.stats().hit_rate()
        };
        let summary = RunSummary {
            tasks: self.tasks.len(),
            inferences,
            cache_hit_rate,
            avg_latency_ms: cycles_to_ms((lat_sum / n) as Cycle),
            mem_mb_per_model: dram_sum / n / 1e6,
            makespan_ms: cycles_to_ms(self.now),
            sla_rate: if inferences > 0 {
                sla_num / inferences as f64
            } else {
                1.0
            },
            multicast_saved_mb: self.nec.stats().multicast_saved_lines.get() as f64
                * self.params.soc.cache.line_bytes as f64
                / 1e6,
            latency_tail: tail,
            shed_requests,
            retried_inferences,
            dropped_inferences,
        };
        RunOutput {
            policy: self.label.clone(),
            summary,
            detail: want_tasks.then_some(RunDetail {
                tasks,
                latency_hist: hist,
                queue_depth: self.queue_samples.clone(),
            }),
        }
    }

    #[cfg(test)]
    pub(crate) fn debug_cache_state(&self) -> (u32, u32, u32) {
        (
            self.alloc.idle_pages(),
            self.alloc.total_pages(),
            self.nec.claimed_pages(),
        )
    }
}

/// Convenience: builds the standard N-tenant model list by cycling the
/// Table I models.
#[deprecated(
    since = "0.2.0",
    note = "build a `Workload` over `camdn_models::zoo` instead"
)]
pub fn workload(n: usize) -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    (0..n).map(|i| zoo[i % zoo.len()].clone()).collect()
}

/// Runs one configuration end to end.
///
/// # Panics
///
/// Panics when the configuration is invalid or an engine invariant
/// breaks; the builder path ([`Simulation`](crate::Simulation)) reports
/// [`EngineError`] instead.
#[deprecated(
    since = "0.2.0",
    note = "assemble runs with `Simulation::builder()` instead"
)]
#[allow(deprecated)]
pub fn simulate(cfg: EngineConfig, task_models: &[Model]) -> crate::result::RunResult {
    let workload = Workload::closed(task_models.to_vec(), cfg.rounds_per_task);
    Engine::with_policy(
        cfg.params(),
        builtin_policy(cfg.policy),
        &workload,
        None,
        None,
    )
    .and_then(|mut e| e.run())
    // camdn-lint: allow(panic-in-lib, reason = "deprecated pre-builder shim; its documented contract is to panic on failure")
    .expect("simulation failed")
    .legacy_result()
    // camdn-lint: allow(panic-in-lib, reason = "the legacy EngineConfig path always requests per-task detail")
    .expect("the legacy params always retain the per-task table")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use camdn_models::zoo;

    fn quick(policy: PolicyKind, models: &[Model]) -> RunOutput {
        Simulation::builder()
            .policy(policy)
            .workload(Workload::closed(models.to_vec(), 2))
            .run()
            .expect("quick run")
    }

    #[test]
    fn single_task_baseline_completes() {
        // Include the cold round: real DRAM traffic.
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::closed(vec![zoo::mobilenet_v2()], 2))
            .warmup_rounds(0)
            .run()
            .unwrap();
        assert_eq!(r.tasks().len(), 1);
        assert_eq!(r.tasks()[0].inferences, 2);
        assert!(r.tasks()[0].mean_latency_ms > 0.0);
        assert!(r.tasks()[0].mean_dram_mb > 0.0);
        assert!(
            r.summary.cache_hit_rate > 0.0,
            "refetches must hit the big cache"
        );
    }

    #[test]
    fn lone_small_model_runs_warm_from_cache() {
        // MobileNet's 3.5 MB of weights fit a lonely 16 MiB transparent
        // cache: after the warm-up inference, DRAM traffic nearly
        // vanishes — the cross-inference reuse the motivation experiment
        // destroys with co-tenants.
        let r = quick(PolicyKind::SharedBaseline, &[zoo::mobilenet_v2()]);
        assert!(
            r.tasks()[0].mean_dram_mb < 1.0,
            "warm lone run should be almost DRAM-free, got {:.2} MB",
            r.tasks()[0].mean_dram_mb
        );
    }

    #[test]
    fn single_task_camdn_completes_and_frees_pages() {
        let workload = Workload::closed(vec![zoo::mobilenet_v2()], 2);
        let params = SimParams {
            soc: SocConfig::paper_default(),
            seed: 0xCA3D41,
            warmup_rounds: 1,
            qos_scale: None,
            epoch_cycles: 200_000,
            mapper: MapperConfig::paper_default(),
            reference_model: false,
            detail: DetailLevel::Tasks,
            queue_sample_cycles: None,
            fault_plan: None,
            max_sim_cycles: None,
            max_wall: None,
            admission_control: false,
            legacy_scheduler: false,
        };
        let mut engine = Engine::with_policy(
            params,
            builtin_policy(PolicyKind::CamdnFull),
            &workload,
            None,
            None,
        )
        .unwrap();
        let r = engine.run().unwrap();
        assert_eq!(r.tasks()[0].inferences, 1);
        // All cache pages must be back after the run (no leaks).
        let (idle, total, claimed) = engine.debug_cache_state();
        assert_eq!(idle, total);
        assert_eq!(claimed, 0);
    }

    #[test]
    fn camdn_moves_less_dram_than_baseline() {
        let models: Vec<Model> = vec![
            zoo::mobilenet_v2(),
            zoo::efficientnet_b0(),
            zoo::mobilenet_v2(),
            zoo::efficientnet_b0(),
        ];
        let base = quick(PolicyKind::SharedBaseline, &models);
        let camdn = quick(PolicyKind::CamdnFull, &models);
        assert!(
            camdn.summary.mem_mb_per_model < base.summary.mem_mb_per_model * 1.05,
            "CaMDN {:.1} MB vs baseline {:.1} MB",
            camdn.summary.mem_mb_per_model,
            base.summary.mem_mb_per_model
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let models = vec![zoo::mobilenet_v2(), zoo::gnmt()];
        let a = quick(PolicyKind::CamdnFull, &models);
        let b = quick(PolicyKind::CamdnFull, &models);
        assert_eq!(a, b);
    }

    #[test]
    fn hw_only_policy_completes() {
        let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
        let r = quick(PolicyKind::CamdnHwOnly, &models);
        assert!(r.tasks().iter().all(|t| t.inferences == 1));
    }

    #[test]
    fn qos_mode_tracks_deadlines() {
        let models = vec![zoo::mobilenet_v2(), zoo::mobilenet_v2()];
        let r = Simulation::builder()
            .policy(PolicyKind::Aurora)
            .workload(Workload::closed(models, 2))
            .qos_scale(1.2)
            .run()
            .unwrap();
        for t in r.tasks() {
            assert!(t.sla_rate >= 0.0 && t.sla_rate <= 1.0);
        }
        assert!(r.summary.sla_rate >= 0.0 && r.summary.sla_rate <= 1.0);
    }

    #[test]
    fn more_tenants_than_npus_queue() {
        // 3 tasks on a 2-NPU SoC must still all complete.
        let mut soc = SocConfig::paper_default();
        soc.npu.cores = 2;
        let models = vec![
            zoo::mobilenet_v2(),
            zoo::mobilenet_v2(),
            zoo::mobilenet_v2(),
        ];
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .soc(soc)
            .workload(Workload::closed(models, 2))
            .run()
            .unwrap();
        assert!(r.tasks().iter().all(|t| t.inferences == 1));
    }

    #[test]
    fn contention_slows_tasks_down() {
        let one = quick(PolicyKind::SharedBaseline, &[zoo::efficientnet_b0()]);
        let crowd: Vec<Model> = (0..16).map(|_| zoo::efficientnet_b0()).collect();
        let many = quick(PolicyKind::SharedBaseline, &crowd);
        let ef_alone = one.tasks()[0].mean_latency_ms;
        let ef_crowd = many.tasks()[0].mean_latency_ms;
        assert!(
            ef_crowd > ef_alone,
            "16 tenants ({ef_crowd:.2} ms) must be slower than 1 ({ef_alone:.2} ms)"
        );
    }

    #[test]
    fn poisson_open_loop_completes_all_arrivals() {
        let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
        let r = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::poisson(models, 0.05, 100.0))
            .warmup_rounds(0)
            .run()
            .unwrap();
        // ~5 expected arrivals per task; every drawn arrival must retire.
        assert!(r.tasks().iter().any(|t| t.inferences > 0));
        assert!(r.summary.makespan_ms >= 0.0);
    }

    #[test]
    fn zero_arrival_tasks_do_not_deflate_run_averages() {
        // One task gets all the bursts, the co-tenant's schedule is
        // empty at a tiny horizon — its phantom 0.0 latency must not
        // drag avg_latency_ms below the running task's mean.
        let models = vec![zoo::mobilenet_v2(), zoo::mobilenet_v2()];
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::poisson(models, 0.001, 10.0))
            .run()
            .unwrap();
        let measured: Vec<_> = r.tasks().iter().filter(|t| t.inferences > 0).collect();
        if measured.is_empty() {
            assert_eq!(r.summary.avg_latency_ms, 0.0);
        } else {
            let mean: f64 =
                measured.iter().map(|t| t.mean_latency_ms).sum::<f64>() / measured.len() as f64;
            // Tolerance covers the cycle-truncation in cycles_to_ms.
            assert!(
                (r.summary.avg_latency_ms - mean).abs() < 1e-5,
                "avg {:.4} != mean over measured tasks {:.4}",
                r.summary.avg_latency_ms,
                mean
            );
        }
    }

    #[test]
    fn open_loop_counts_every_arrival_despite_default_warmup() {
        // Warm-up skipping is closed-loop-only: with the builder's
        // default warmup of 1, an open-loop task's arrivals must all be
        // measured (a sparse task could otherwise report zero stats).
        let models = vec![zoo::mobilenet_v2()];
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::bursty(models, 1, 2, 0.0))
            .run()
            .unwrap();
        assert_eq!(r.tasks()[0].inferences, 2);
        assert!(r.summary.avg_latency_ms > 0.0);
    }

    #[test]
    fn open_loop_latency_includes_queueing() {
        // Three same-cycle burst requests on one task: the 2nd and 3rd
        // queue behind the 1st, so mean response time must exceed the
        // dispatch-measured closed-loop latency of identical work.
        let models = vec![zoo::mobilenet_v2()];
        let burst = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::bursty(models.clone(), 1, 3, 0.0))
            .warmup_rounds(0)
            .run()
            .unwrap();
        let closed = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::closed(models, 3))
            .warmup_rounds(0)
            .run()
            .unwrap();
        assert!(
            burst.tasks()[0].mean_latency_ms > closed.tasks()[0].mean_latency_ms * 1.5,
            "queued burst {:.2} ms should far exceed per-dispatch {:.2} ms",
            burst.tasks()[0].mean_latency_ms,
            closed.tasks()[0].mean_latency_ms
        );
    }

    #[test]
    fn page_release_with_insufficient_pages_wakes_no_one() {
        // A waiter whose pending decision still cannot be satisfied must
        // not receive a retry event on release (the old engine woke every
        // waiter on every release).
        let workload = Workload::closed(vec![zoo::mobilenet_v2(), zoo::mobilenet_v2()], 2);
        let params = SimParams {
            soc: SocConfig::paper_default(),
            seed: 1,
            warmup_rounds: 1,
            qos_scale: None,
            epoch_cycles: 200_000,
            mapper: MapperConfig::paper_default(),
            reference_model: false,
            detail: DetailLevel::Tasks,
            queue_sample_cycles: None,
            fault_plan: None,
            max_sim_cycles: None,
            max_wall: None,
            admission_control: false,
            legacy_scheduler: false,
        };
        let mut engine = Engine::with_policy(
            params,
            builtin_policy(PolicyKind::CamdnFull),
            &workload,
            None,
            None,
        )
        .unwrap();
        let idle = engine.alloc.idle_pages();
        engine.tasks[1].state = TaskState::WaitingPages {
            decision: camdn_core::Decision {
                candidate: camdn_core::CandidateRef::Lwm(0),
                pneed: idle + 1, // more than the whole subspace has idle
                timeout: None,
            },
        };
        engine.page_waiters.push(1);
        let before = engine.events.len();
        engine.wake_page_waiters(100);
        assert_eq!(
            engine.events.len(),
            before,
            "insufficient release must schedule no events"
        );
        // Once the demand fits, the release wakes the waiter.
        engine.tasks[1].state = TaskState::WaitingPages {
            decision: camdn_core::Decision {
                candidate: camdn_core::CandidateRef::Lwm(0),
                pneed: idle,
                timeout: None,
            },
        };
        engine.wake_page_waiters(200);
        assert_eq!(engine.events.len(), before + 1);
    }

    #[test]
    fn multicast_group_fetch_is_single_walk() {
        // Regression for the multicast thundering herd: a QoS AuRORA run
        // (multi-NPU groups, transparent route) must be deterministic and
        // count each grouped weight fetch once through the tag array —
        // replica fetches are charged analytically, so the transparent
        // hit count exceeds the miss count (replicas all "hit").
        let models = vec![zoo::mobilenet_v2(), zoo::mobilenet_v2()];
        let run = || {
            Simulation::builder()
                .policy(PolicyKind::Aurora)
                .workload(Workload::closed(models.clone(), 2))
                .qos_scale(1.2)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "group fetches must stay deterministic");
        assert!(a.tasks().iter().all(|t| t.inferences == 1));
        assert!(a.summary.cache_hit_rate > 0.0);
    }

    #[test]
    fn reference_model_matches_batched_engine() {
        // Whole-engine differential: the per-line reference memory model
        // and the batched fast paths must produce identical results.
        let models = vec![zoo::mobilenet_v2(), zoo::gnmt()];
        let run = |reference| {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .workload(Workload::closed(models.clone(), 2))
                .reference_model(reference)
                .run()
                .unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fault_knobs_left_unset_are_bitwise_inert() {
        // An empty plan, unreachable budgets and admission control on a
        // closed-loop run must all leave results bit-for-bit identical
        // to a build that never heard of the chaos layer.
        let models = vec![zoo::mobilenet_v2(), zoo::gnmt()];
        let plain = quick(PolicyKind::CamdnFull, &models);
        let armed = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::closed(models.clone(), 2))
            .fault_plan(FaultPlan::default())
            .max_sim_cycles(Cycle::MAX)
            .max_wall(Duration::from_secs(3600))
            .admission_control(true)
            .run()
            .expect("inert knobs must not trip");
        assert_eq!(plain, armed);
    }

    #[test]
    fn npu_outage_requeues_inflight_work_and_completes() {
        let models: Vec<Model> = (0..4).map(|_| zoo::mobilenet_v2()).collect();
        // Take the whole SoC down mid-run, bring it back later: every
        // in-flight inference is killed, retried after back-off, and
        // the run still retires all rounds without panic or deadlock.
        let cores = SocConfig::paper_default().npu.cores;
        let mut events = Vec::new();
        for n in 0..cores {
            events.push(crate::FaultEvent {
                at: 200_000,
                kind: FaultKind::NpuDown(n),
            });
        }
        for n in 0..cores {
            events.push(crate::FaultEvent {
                at: 2_000_000,
                kind: FaultKind::NpuUp(n),
            });
        }
        let plan = FaultPlan::new(events).unwrap();
        let r = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::closed(models, 2))
            .fault_plan(plan)
            .run()
            .expect("outage run must complete");
        assert!(
            r.summary.retried_inferences > 0,
            "a full-SoC outage at 200k cycles must kill in-flight work"
        );
        assert_eq!(r.summary.dropped_inferences, 0, "one kill never drops");
        let total: usize = r.tasks().iter().map(|t| t.inferences).sum();
        assert_eq!(total, 4, "every non-warmup round must still retire");
        // No page leaks through the kill/teardown path: rerun through
        // the raw engine to inspect allocator state.
        let params = SimParams {
            soc: SocConfig::paper_default(),
            seed: 0xCA3D41,
            warmup_rounds: 1,
            qos_scale: None,
            epoch_cycles: 200_000,
            mapper: MapperConfig::paper_default(),
            reference_model: false,
            detail: DetailLevel::Tasks,
            queue_sample_cycles: None,
            fault_plan: Some(
                FaultPlan::new(vec![crate::FaultEvent {
                    at: 200_000,
                    kind: FaultKind::NpuDown(0),
                }])
                .unwrap(),
            ),
            max_sim_cycles: None,
            max_wall: None,
            admission_control: false,
            legacy_scheduler: false,
        };
        let workload = Workload::closed((0..4).map(|_| zoo::mobilenet_v2()).collect(), 2);
        let mut engine = Engine::with_policy(
            params,
            builtin_policy(PolicyKind::CamdnFull),
            &workload,
            None,
            None,
        )
        .unwrap();
        engine.run().unwrap();
        let (idle, total, claimed) = engine.debug_cache_state();
        assert_eq!(idle, total, "killed inferences must return their pages");
        assert_eq!(claimed, 0);
    }

    #[test]
    fn repeated_outages_exhaust_the_retry_budget() {
        // One NPU, hammered down/up forever: the lone task's inferences
        // keep getting killed; past the retry budget they are dropped,
        // and the run still terminates.
        let mut soc = SocConfig::paper_default();
        soc.npu.cores = 1;
        let mut events = Vec::new();
        let mut at = 50_000;
        for _ in 0..200 {
            events.push(crate::FaultEvent {
                at,
                kind: FaultKind::NpuDown(0),
            });
            events.push(crate::FaultEvent {
                at: at + 400_000,
                kind: FaultKind::NpuUp(0),
            });
            at += 800_000;
        }
        let plan = FaultPlan::new(events).unwrap();
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .soc(soc)
            .workload(Workload::closed(vec![zoo::resnet50()], 4))
            .warmup_rounds(0)
            .fault_plan(plan)
            .run()
            .expect("a hammered run must still terminate");
        assert!(r.summary.retried_inferences > 0);
        assert!(
            r.summary.dropped_inferences > 0,
            "four kills of one inference must exhaust the retry budget"
        );
        assert_eq!(
            r.tasks()[0].inferences as u64 + r.summary.dropped_inferences,
            4,
            "every round retires exactly once: a record or a drop"
        );
    }

    #[test]
    fn clock_throttle_stretches_the_run() {
        let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
        let run = |plan: Option<FaultPlan>| {
            let mut b = Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .workload(Workload::closed(models.clone(), 2))
                .warmup_rounds(0);
            if let Some(p) = plan {
                b = b.fault_plan(p);
            }
            b.run().unwrap()
        };
        let healthy = run(None);
        let throttled = run(Some(
            FaultPlan::new(vec![crate::FaultEvent {
                at: 0,
                kind: FaultKind::ClockThrottle { factor: 0.5 },
            }])
            .unwrap(),
        ));
        assert!(
            throttled.summary.makespan_ms > healthy.summary.makespan_ms,
            "half clock ({:.2} ms) must be slower than full ({:.2} ms)",
            throttled.summary.makespan_ms,
            healthy.summary.makespan_ms
        );
    }

    #[test]
    fn dram_channel_outage_stretches_the_run() {
        let models = vec![zoo::resnet50(), zoo::resnet50()];
        let run = |events: Vec<crate::FaultEvent>| {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .workload(Workload::closed(models.clone(), 2))
                .warmup_rounds(0)
                .fault_plan(FaultPlan::new(events).unwrap())
                .run()
                .unwrap()
        };
        let healthy = run(vec![]);
        let degraded = run(vec![
            crate::FaultEvent {
                at: 0,
                kind: FaultKind::DramChannelDown(0),
            },
            crate::FaultEvent {
                at: 0,
                kind: FaultKind::DramChannelDown(1),
            },
        ]);
        assert!(
            degraded.summary.makespan_ms > healthy.summary.makespan_ms,
            "two dead channels ({:.2} ms) must be slower than four live ({:.2} ms)",
            degraded.summary.makespan_ms,
            healthy.summary.makespan_ms
        );
    }

    #[test]
    fn cycle_budget_stops_deterministically_with_a_partial() {
        let models: Vec<Model> = (0..8).map(|_| zoo::resnet50()).collect();
        let run = || {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .workload(Workload::closed(models.clone(), 4))
                .warmup_rounds(0)
                .max_sim_cycles(2_000_000)
                .run()
        };
        let (a, b) = (run(), run());
        match (a, b) {
            (
                Err(EngineError::BudgetExceeded {
                    budget: a_kind,
                    at_cycle: a_at,
                    partial: a_part,
                }),
                Err(EngineError::BudgetExceeded {
                    budget: b_kind,
                    at_cycle: b_at,
                    partial: b_part,
                }),
            ) => {
                assert_eq!(a_kind, BudgetKind::SimCycles);
                assert_eq!(a_kind, b_kind);
                assert_eq!(a_at, b_at, "the cycle budget must trip deterministically");
                assert_eq!(a_part, b_part);
                assert!(
                    a_part.summary.makespan_ms <= cycles_to_ms(2_000_000),
                    "the partial covers only work inside the budget"
                );
                assert_eq!(a_part.policy, "Baseline");
            }
            other => panic!("expected two BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn admission_control_sheds_doomed_arrivals() {
        // A same-cycle burst of 6 requests against a deadline shorter
        // than two back-to-back inferences: the tail of the queue is
        // provably doomed at dispatch and must shed, not run.
        let models = vec![zoo::resnet50()];
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::bursty(models.clone(), 1, 6, 0.0))
            .qos_scale(0.5)
            .admission_control(true)
            .run()
            .unwrap();
        assert!(
            r.summary.shed_requests > 0,
            "a 6-deep same-cycle queue must shed its doomed tail"
        );
        assert_eq!(
            r.tasks()[0].inferences as u64 + r.summary.shed_requests,
            6,
            "every arrival either runs or sheds"
        );
        assert_eq!(r.tasks()[0].shed, r.summary.shed_requests);
        // Without the knob the same workload runs everything.
        let r = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::bursty(models, 1, 6, 0.0))
            .qos_scale(0.5)
            .run()
            .unwrap();
        assert_eq!(r.summary.shed_requests, 0);
        assert_eq!(r.tasks()[0].inferences, 6);
    }

    #[test]
    fn random_fault_schedules_never_panic_or_deadlock() {
        // Property test over the generator: aggressive random fault
        // schedules across every policy must complete (Ok or a typed
        // budget error — never a panic, never a hang).
        for seed in 0..6u64 {
            let plan = FaultPlan::generate(&crate::FaultGenConfig {
                seed: 0xFA017 + seed,
                horizon: 20_000_000,
                npu_cores: 16,
                dram_channels: 4,
                npu_mtbf_cycles: 2_000_000.0,
                npu_mttr_cycles: 500_000.0,
                dram_mtbf_cycles: 3_000_000.0,
                dram_mttr_cycles: 500_000.0,
                dram_degrade_factor: 0.25,
                throttle_mtbf_cycles: 4_000_000.0,
                throttle_mttr_cycles: 1_000_000.0,
                throttle_factor: 0.6,
            })
            .unwrap();
            let kind = PolicyKind::ALL[seed as usize % PolicyKind::ALL.len()];
            let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
            let r = Simulation::builder()
                .policy(kind)
                .workload(Workload::poisson(models, 1.0, 10.0))
                .qos_scale(1.0)
                .admission_control(true)
                .fault_plan(plan)
                .seed(seed)
                .run();
            assert!(
                r.is_ok(),
                "seed {seed} under {} must complete: {:?}",
                kind.label(),
                r.err()
            );
        }
    }

    #[test]
    fn bursty_arrivals_honor_the_gap() {
        let models: Vec<Model> = (0..4).map(|_| zoo::mobilenet_v2()).collect();
        let run = |gap_ms: f64| {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .workload(Workload::bursty(models.clone(), 2, 3, gap_ms))
                .warmup_rounds(0)
                .run()
                .unwrap()
        };
        let spread = run(50.0);
        let total: usize = spread.tasks().iter().map(|t| t.inferences).sum();
        assert_eq!(total, 4 * 6, "every burst arrival must complete");
        // The second burst arrives 50 ms after the first: the run must
        // span the gap, and collapsing the gap must shorten it.
        assert!(
            spread.summary.makespan_ms >= 50.0,
            "makespan {:.1} ms ignores the burst gap",
            spread.summary.makespan_ms
        );
        let packed = run(0.0);
        assert!(
            packed.summary.makespan_ms < spread.summary.makespan_ms,
            "gap 0 ({:.1} ms) must finish before gap 50 ({:.1} ms)",
            packed.summary.makespan_ms,
            spread.summary.makespan_ms
        );
    }
}
