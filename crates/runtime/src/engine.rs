//! The multi-tenant execution engine.
//!
//! A discrete-event simulation of co-located DNN tasks on the
//! NPU-integrated SoC of Table II. Each task is a state machine that
//! acquires an NPU, walks its model's layers, and for every layer
//! executes the phase plan produced by the mapper. All tasks share the
//! DRAM channels and the shared cache, which is where the multi-tenant
//! interference — and CaMDN's advantage — comes from.
//!
//! Five system configurations are supported ([`PolicyKind`]):
//!
//! * [`PolicyKind::SharedBaseline`] — plain transparent shared cache
//!   (the motivation experiment of Fig. 2);
//! * [`PolicyKind::Moca`] — MoCA-style dynamic memory-bandwidth
//!   partitioning \[8\] on a transparent cache;
//! * [`PolicyKind::Aurora`] — AuRORA-style dynamic NPU + bandwidth
//!   co-allocation \[13\] on a transparent cache;
//! * [`PolicyKind::CamdnHwOnly`] — CaMDN architecture with a static
//!   equal split of the NPU subspace;
//! * [`PolicyKind::CamdnFull`] — the full architecture-scheduling
//!   co-design (Algorithm 1; in QoS mode it runs AuRORA's bandwidth/NPU
//!   allocation on top, as in Section IV-A3).

use crate::layout::TaskLayout;
use crate::task::{InferenceRecord, Task, TaskState};
use camdn_cache::{Nec, SharedCache};
use camdn_common::config::SocConfig;
use camdn_common::types::{cycles_to_ms, ms_to_cycles, Cycle};
use camdn_common::{EventQueue, SimRng};
use camdn_core::{
    install_region, teardown_region, CandidateRef, Decision, DynamicAllocator, PageAllocator,
    RegionError, StaticPolicy,
};
use camdn_dram::DramModel;
use camdn_mapper::{
    lower, map_model, LowerMode, MapperConfig, MappingCandidate, ModelMapping, PlanSizes, Route,
    TensorKind,
};
use camdn_models::{Model, WeightClass};
use camdn_npu::NpuCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which system configuration the engine simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Plain shared transparent cache, no resource scheduling.
    SharedBaseline,
    /// Dynamic memory-bandwidth partitioning (MoCA).
    Moca,
    /// Dynamic NPU + bandwidth co-allocation (AuRORA).
    Aurora,
    /// CaMDN architecture with static equal cache split.
    CamdnHwOnly,
    /// Full CaMDN co-design (Algorithm 1).
    CamdnFull,
}

impl PolicyKind {
    /// True for the two CaMDN variants (NPU-controlled cache).
    pub fn is_camdn(&self) -> bool {
        matches!(self, PolicyKind::CamdnHwOnly | PolicyKind::CamdnFull)
    }

    /// Display label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::SharedBaseline => "Baseline",
            PolicyKind::Moca => "MoCA",
            PolicyKind::Aurora => "AuRORA",
            PolicyKind::CamdnHwOnly => "CaMDN(HW-only)",
            PolicyKind::CamdnFull => "CaMDN(Full)",
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// SoC parameters (Table II).
    pub soc: SocConfig,
    /// System configuration to simulate.
    pub policy: PolicyKind,
    /// RNG seed (dispatch jitter, NPU choice).
    pub seed: u64,
    /// Inferences per task.
    pub rounds_per_task: u32,
    /// Leading inferences per task excluded from statistics (cache
    /// warm-up).
    pub warmup_rounds: u32,
    /// QoS mode: deadline scale over Table I targets (0.8 = QoS-H,
    /// 1.0 = QoS-M, 1.2 = QoS-L). `None` = closed-loop speedup mode.
    pub qos_scale: Option<f64>,
    /// Bandwidth/NPU reallocation epoch for MoCA/AuRORA/CaMDN-QoS.
    pub epoch_cycles: Cycle,
    /// Offline mapper settings.
    pub mapper: MapperConfig,
}

impl EngineConfig {
    /// Speedup-experiment configuration (Section IV-A4) for a policy.
    pub fn speedup(policy: PolicyKind) -> Self {
        EngineConfig {
            soc: SocConfig::paper_default(),
            policy,
            seed: 0xCA3D41,
            rounds_per_task: 3,
            warmup_rounds: 1,
            qos_scale: None,
            epoch_cycles: 200_000,
            mapper: MapperConfig::paper_default(),
        }
    }

    /// QoS-experiment configuration for a policy at a deadline scale.
    pub fn qos(policy: PolicyKind, scale: f64) -> Self {
        EngineConfig {
            qos_scale: Some(scale),
            ..EngineConfig::speedup(policy)
        }
    }
}

/// Per-task summary of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSummary {
    /// Model abbreviation (Table I).
    pub abbr: String,
    /// QoS target in ms.
    pub qos_ms: f64,
    /// Measured inferences (after warm-up).
    pub inferences: usize,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Mean DRAM traffic per inference, MB.
    pub mean_dram_mb: f64,
    /// SLA satisfaction rate (QoS mode).
    pub sla_rate: f64,
}

/// Aggregate result of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Which policy produced this result.
    pub policy: PolicyKind,
    /// Per-task summaries in task order.
    pub tasks: Vec<TaskSummary>,
    /// Shared-cache hit rate (transparent path for baselines; controlled
    /// hits over all NPU line movements for CaMDN).
    pub cache_hit_rate: f64,
    /// Mean of per-task mean latencies, ms.
    pub avg_latency_ms: f64,
    /// Mean DRAM traffic per model inference, MB.
    pub mem_mb_per_model: f64,
    /// Wall-clock span of the simulation, ms.
    pub makespan_ms: f64,
    /// Line transfers saved by multicast, MB.
    pub multicast_saved_mb: f64,
}

/// The multi-tenant discrete-event engine.
pub struct Engine {
    cfg: EngineConfig,
    models: Vec<Model>,
    mappings: Vec<ModelMapping>,
    tasks: Vec<Task>,
    npus_free: Vec<bool>,
    npu_cores: Vec<NpuCore>,
    dram: DramModel,
    cache: SharedCache,
    nec: Nec,
    alloc: PageAllocator,
    dynalloc: DynamicAllocator,
    static_policy: StaticPolicy,
    events: EventQueue<u32>,
    rng: SimRng,
    npu_waiters: Vec<u32>,
    page_waiters: Vec<u32>,
    next_epoch: Cycle,
    /// Rough isolated-latency estimate per model (for urgency).
    iso_est: Vec<Cycle>,
    now: Cycle,
}

impl Engine {
    /// Builds an engine with one task per entry of `task_models`.
    pub fn new(cfg: EngineConfig, task_models: &[Model]) -> Self {
        let cache_cfg = cfg.soc.cache;
        let mut cache = SharedCache::new(&cache_cfg);
        let mut dram = DramModel::new(cfg.soc.dram, cache_cfg.line_bytes);
        let nec = Nec::new(&cache_cfg);
        if cfg.policy.is_camdn() {
            cache.partition_ways(cache_cfg.npu_ways, 0, &mut dram);
        }
        let alloc = PageAllocator::new(nec.first_pcpn(), nec.npu_pages());

        // Distinct models are mapped once and shared.
        let mut models: Vec<Model> = Vec::new();
        let mut mappings: Vec<ModelMapping> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut tasks = Vec::with_capacity(task_models.len());
        for (tid, m) in task_models.iter().enumerate() {
            let midx = *index.entry(m.name.clone()).or_insert_with(|| {
                models.push(m.clone());
                mappings.push(map_model(m, &cfg.mapper));
                models.len() - 1
            });
            tasks.push(Task::new(tid as u32, midx, TaskLayout::new(tid as u32, m)));
        }
        let iso_est = mappings
            .iter()
            .map(|mm| mm.baseline.iter().map(|c| c.est_cycles).sum())
            .collect();

        let n = task_models.len();
        let cpt_entries = (cache_cfg.total_bytes / cache_cfg.page_bytes) as u32;
        Engine {
            static_policy: StaticPolicy::equal_split(nec.npu_pages(), n as u32),
            dynalloc: DynamicAllocator::new(n),
            rng: SimRng::new(cfg.seed),
            npus_free: vec![true; cfg.soc.npu.cores as usize],
            npu_cores: (0..cfg.soc.npu.cores)
                .map(|i| NpuCore::new(i, cfg.soc.npu, cpt_entries, cache_cfg.page_bytes))
                .collect(),
            events: EventQueue::new(),
            npu_waiters: Vec::new(),
            page_waiters: Vec::new(),
            next_epoch: cfg.epoch_cycles,
            now: 0,
            cfg,
            models,
            mappings,
            tasks,
            dram,
            cache,
            nec,
            alloc,
            iso_est,
        }
    }

    /// Overrides Algorithm 1's look-ahead fraction (paper default 0.2);
    /// used by the ablation harness.
    pub fn set_lookahead(&mut self, factor: f64) {
        self.dynalloc.lookahead = factor;
    }

    fn shares_active(&self) -> bool {
        self.cfg.qos_scale.is_some()
            && matches!(
                self.cfg.policy,
                PolicyKind::Moca | PolicyKind::Aurora | PolicyKind::CamdnFull
            )
    }

    fn groups_active(&self) -> bool {
        self.cfg.qos_scale.is_some()
            && matches!(self.cfg.policy, PolicyKind::Aurora | PolicyKind::CamdnFull)
    }

    fn deadline_cycles(&self, model_idx: usize) -> Option<Cycle> {
        self.cfg
            .qos_scale
            .map(|s| ms_to_cycles(self.models[model_idx].qos_ms * s))
    }

    /// Runs the simulation to completion and aggregates the results.
    pub fn run(&mut self) -> RunResult {
        // Stagger arrivals so tasks do not execute in lock-step.
        for tid in 0..self.tasks.len() as u32 {
            let jitter = self.rng.next_below(50_000);
            self.events.push(jitter, tid);
        }
        while let Some((now, tid)) = self.events.pop() {
            self.now = now.max(self.now);
            self.maybe_rebalance();
            self.step(tid, now);
        }
        self.aggregate()
    }

    // ---------------------------------------------------------------
    // Scheduling epochs (MoCA / AuRORA / CaMDN-QoS)
    // ---------------------------------------------------------------

    fn maybe_rebalance(&mut self) {
        if !self.shares_active() || self.now < self.next_epoch {
            return;
        }
        self.next_epoch = self.now + self.cfg.epoch_cycles;
        // Urgency: predicted completion vs deadline of the inference in
        // flight. Tasks behind schedule receive larger bandwidth shares
        // (MoCA) and more NPUs (AuRORA).
        let mut urgencies = vec![0.0f64; self.tasks.len()];
        let mut total = 0.0;
        for (i, t) in self.tasks.iter().enumerate() {
            if t.state == TaskState::Done {
                continue;
            }
            let deadline = self.deadline_cycles(t.model_idx).unwrap_or(1) as f64;
            let layers = self.models[t.model_idx].layers.len();
            let frac_left = 1.0 - t.cur_layer as f64 / layers as f64;
            let elapsed = self.now.saturating_sub(t.inference_start) as f64;
            let predicted = elapsed + self.iso_est[t.model_idx] as f64 * frac_left;
            let u = (predicted / deadline).clamp(0.05, 20.0);
            urgencies[i] = u;
            total += u;
        }
        if total <= 0.0 {
            return;
        }
        let npu_budget = self.npus_free.len() as f64;
        for (i, t) in self.tasks.iter_mut().enumerate() {
            if t.state == TaskState::Done {
                continue;
            }
            t.bw_share = (urgencies[i] / total).max(0.02);
            t.npu_quota = ((urgencies[i] / total * npu_budget).round() as u32).clamp(1, 4);
        }
    }

    // ---------------------------------------------------------------
    // Task state machine
    // ---------------------------------------------------------------

    fn step(&mut self, tid: u32, now: Cycle) {
        match self.tasks[tid as usize].state.clone() {
            TaskState::WaitingNpu => self.try_dispatch(tid, now),
            TaskState::WaitingPages { decision } => {
                self.try_begin_layer(tid, now, Some(decision));
            }
            TaskState::Running { phase_idx } => {
                // Stale wake (page-release or timeout event from an
                // earlier wait): the phase is not actually done yet.
                if now < self.tasks[tid as usize].phase_end {
                    return;
                }
                // The wake marks the end of phase `phase_idx`'s memory
                // (double buffering: its compute overlaps the next
                // phase's transfers).
                let n_phases = {
                    let t = &self.tasks[tid as usize];
                    t.plan.as_ref().map(|p| p.phases.len()).unwrap_or(0)
                };
                {
                    let t = &mut self.tasks[tid as usize];
                    if phase_idx < n_phases {
                        let plan = t.plan.as_ref().expect("running task has a plan");
                        let c = plan.phases[phase_idx].compute_cycles;
                        let eff = if t.group > 1 { 0.9 } else { 1.0 };
                        let adj = (c as f64 / (f64::from(t.group) * eff)).ceil() as Cycle;
                        t.compute_horizon = t.compute_horizon.max(now) + adj;
                    }
                }
                if phase_idx + 1 < n_phases {
                    self.exec_phase(tid, now, phase_idx + 1);
                } else {
                    // All memory done; drain the PE pipeline then retire.
                    let drain = self.tasks[tid as usize].compute_horizon.max(now);
                    if drain > now {
                        let t = &mut self.tasks[tid as usize];
                        t.state = TaskState::Running { phase_idx: n_phases };
                        t.phase_end = drain;
                        self.events.push(drain, tid);
                    } else {
                        self.finish_layer(tid, now);
                    }
                }
            }
            TaskState::Done => {}
        }
    }

    fn free_npu_count(&self) -> usize {
        self.npus_free.iter().filter(|f| **f).count()
    }

    fn try_dispatch(&mut self, tid: u32, now: Cycle) {
        let want = if self.groups_active() {
            self.tasks[tid as usize].npu_quota.max(1)
        } else {
            1
        };
        let free = self.free_npu_count();
        if free == 0 {
            if !self.npu_waiters.contains(&tid) {
                self.npu_waiters.push(tid);
            }
            return;
        }
        let take = (want as usize).min(free);
        // "Randomly dispatch each model task to one NPU": pick the
        // primary NPU at random among the free ones.
        let mut free_ids: Vec<usize> = (0..self.npus_free.len())
            .filter(|&i| self.npus_free[i])
            .collect();
        self.rng.shuffle(&mut free_ids);
        let assigned: Vec<usize> = free_ids.into_iter().take(take).collect();
        for &n in &assigned {
            self.npus_free[n] = false;
        }
        let t = &mut self.tasks[tid as usize];
        t.npus = assigned;
        t.group = take as u32;
        t.cur_layer = 0;
        t.inference_start = now;
        t.inference_dram = 0;
        self.try_begin_layer(tid, now, None);
    }

    fn mct_of(&self, tid: u32) -> &camdn_mapper::Mct {
        let t = &self.tasks[tid as usize];
        &self.mappings[t.model_idx].mcts[t.cur_layer]
    }

    fn plan_sizes(&self, tid: u32) -> PlanSizes {
        let t = &self.tasks[tid as usize];
        let layer = &self.models[t.model_idx].layers[t.cur_layer];
        PlanSizes {
            weight: layer.weight_operand_bytes(),
            input: layer.input_bytes(),
            output: layer.output_bytes(),
            bias: match layer.weight_class {
                WeightClass::Static => layer.nest.bias_bytes(),
                _ => 0,
            },
        }
    }

    /// Begins the current layer of `tid`: candidate selection, page
    /// acquisition (with Algorithm 1's timeout/degrade protocol for
    /// CaMDN-Full) and plan lowering.
    fn try_begin_layer(&mut self, tid: u32, now: Cycle, pending: Option<Decision>) {
        let policy = self.cfg.policy;
        if !policy.is_camdn() {
            // Baselines: cache-unaware candidate, transparent lowering.
            let t = &self.tasks[tid as usize];
            let cand = self.mappings[t.model_idx].baseline[t.cur_layer].clone();
            self.start_plan(tid, now, &cand, LowerMode::Transparent, false);
            return;
        }

        let mct = self.mct_of(tid).clone();
        let lbm_active = self.tasks[tid as usize].lbm_block == Some(mct.block.id);
        let mut decision = match (policy, pending) {
            (_, Some(d)) => d,
            (PolicyKind::CamdnHwOnly, None) => self.static_policy.select(&mct, lbm_active),
            (PolicyKind::CamdnFull, None) => {
                self.dynalloc
                    .select(now, tid, &mct, self.alloc.idle_pages())
            }
            _ => unreachable!("non-CaMDN policies handled above"),
        };

        loop {
            let is_lbm = decision.candidate == CandidateRef::Lbm;
            let cand = self.dynalloc.resolve(&mct, &decision).clone();
            // LBM layers past the head reuse the block grant: no pages.
            let needs_pages = decision.pneed > 0;
            if needs_pages {
                let primary = self.tasks[tid as usize].npus[0];
                match install_region(
                    tid,
                    &cand,
                    &mut self.alloc,
                    &mut self.nec,
                    &mut self.npu_cores[primary],
                ) {
                    Ok(grant) => {
                        let t = &mut self.tasks[tid as usize];
                        if is_lbm {
                            t.lbm_grant = Some(grant);
                            t.lbm_block = Some(mct.block.id);
                            self.dynalloc.enable_lbm(t.id, mct.block.id);
                        } else {
                            t.lwm_grant = Some(grant);
                        }
                    }
                    Err(RegionError::Alloc(_)) => {
                        match policy {
                            PolicyKind::CamdnFull => {
                                // Wait for pages until the timeout, then
                                // degrade to a cheaper candidate.
                                let expired =
                                    decision.timeout.map(|dl| now >= dl).unwrap_or(true);
                                if expired {
                                    decision = self.dynalloc.degrade(&mct, decision.pneed);
                                    continue;
                                }
                                let t = &mut self.tasks[tid as usize];
                                t.state = TaskState::WaitingPages { decision };
                                if let Some(dl) = decision.timeout {
                                    self.events.push(dl, tid);
                                }
                                if !self.page_waiters.contains(&tid) {
                                    self.page_waiters.push(tid);
                                }
                                return;
                            }
                            _ => {
                                // Static quotas guarantee availability;
                                // degrade defensively if they ever don't.
                                decision = self.dynalloc.degrade(&mct, decision.pneed);
                                continue;
                            }
                        }
                    }
                    Err(e) => panic!("region install invariant broken: {e}"),
                }
            } else if is_lbm && mct.block.is_head {
                // Head with zero-page LBM (empty block) — treat as enable.
                self.tasks[tid as usize].lbm_block = Some(mct.block.id);
                self.dynalloc.enable_lbm(tid, mct.block.id);
            }
            self.page_waiters.retain(|&w| w != tid);
            if policy == PolicyKind::CamdnFull {
                // Book-keeping for predAvailPages: when this task will
                // reallocate next and how much it will need.
                let t = &self.tasks[tid as usize];
                let next_p = self.mappings[t.model_idx]
                    .mcts
                    .get(t.cur_layer + 1)
                    .map(|m| m.lwm[m.lwm.len() / 2].pneed)
                    .unwrap_or(0);
                let held = self.alloc.held_by(t.id);
                self.dynalloc
                    .note_alloc(t.id, held, now + cand.est_cycles, next_p);
            }
            self.start_plan(tid, now, &cand, LowerMode::Camdn, is_lbm);
            return;
        }
    }

    fn start_plan(
        &mut self,
        tid: u32,
        now: Cycle,
        cand: &MappingCandidate,
        mode: LowerMode,
        is_lbm: bool,
    ) {
        let sizes = self.plan_sizes(tid);
        let plan = lower(cand, sizes, mode);
        let t = &mut self.tasks[tid as usize];
        t.plan = Some(plan);
        t.cur_is_lbm = is_lbm;
        self.exec_phase(tid, now, 0);
    }

    // ---------------------------------------------------------------
    // Phase execution: the memory system interaction
    // ---------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec_phase(&mut self, tid: u32, now: Cycle, idx: usize) {
        let throttled = self.shares_active();
        let peak_bw = self.cfg.soc.dram.bytes_per_cycle;
        let line = self.cfg.soc.cache.line_bytes;
        let full_mask = self.cache.full_way_mask();
        let dram_before = self.dram.stats().total_bytes();

        let t = &self.tasks[tid as usize];
        let model_idx = t.model_idx;
        let cur_layer = t.cur_layer;
        let group = t.group;
        let layer = &self.models[model_idx].layers[cur_layer];
        let weight_is_act = layer.weight_class == WeightClass::Activation;
        let weight_is_static = layer.weight_class == WeightClass::Static;
        let input_bytes = layer.input_bytes();
        let plan = t.plan.as_ref().expect("running task must have a plan");
        let phase = plan.phases[idx].clone();
        let layout = t.layout.clone();
        let bw_share = t.bw_share;
        let mut bw_gate = t.bw_gate;
        // Pages backing this layer's cached regions: the block grant when
        // the layer runs its LBM candidate, its own LWM grant otherwise.
        let region_pages: Vec<u32> = if t.cur_is_lbm {
            t.lbm_grant.as_ref().map(|g| g.pages.clone()).unwrap_or_default()
        } else {
            t.lwm_grant.as_ref().map(|g| g.pages.clone()).unwrap_or_default()
        };

        let mut mem_finish = now;
        for tr in &phase.transfers {
            let lines = tr.bytes.div_ceil(line);
            let addr = layout.addr_of(cur_layer, tr.tensor, weight_is_act, input_bytes, tr.offset);
            // Bandwidth regulation: DRAM-touching transfers may not start
            // before the task's bandwidth gate.
            let (start, delay) = if throttled && tr.route.touches_dram() {
                let start = now.max(bw_gate);
                (start, start - now)
            } else {
                (now, 0)
            };
            let multicast = group > 1 && tr.tensor == TensorKind::Weight && weight_is_static;
            let done = match tr.route {
                Route::Transparent => {
                    // A multi-NPU group fetches its weights once per NPU;
                    // repeats usually hit in the shared cache.
                    let reps = if multicast { group } else { 1 };
                    let mut fin = start;
                    for _ in 0..reps {
                        let out = self.cache.access_range(
                            start, addr, tr.bytes, tr.write, full_mask, &mut self.dram,
                        );
                        fin = fin.max(out.finish);
                    }
                    fin
                }
                Route::BypassRead => {
                    if multicast {
                        self.nec
                            .multicast_bypass_read(start, addr, lines, group, &mut self.dram, 0)
                    } else {
                        self.nec.bypass_read(start, addr, lines, &mut self.dram, 0)
                    }
                }
                Route::BypassWrite => {
                    self.nec.bypass_write(start, addr, lines, &mut self.dram, 0)
                }
                Route::Fill => self
                    .nec
                    .fill(start, tid, &region_pages, addr, lines, &mut self.dram, 0)
                    .expect("fill on owned pages"),
                Route::CacheRead => {
                    if multicast {
                        self.nec
                            .multicast_read(start, tid, &region_pages, lines, group)
                            .expect("multicast read on owned pages")
                    } else {
                        self.nec
                            .read(start, tid, &region_pages, lines)
                            .expect("read on owned pages")
                    }
                }
                Route::CacheWrite => self
                    .nec
                    .write(start, tid, &region_pages, lines)
                    .expect("write on owned pages"),
                Route::Writeback => self
                    .nec
                    .writeback(start, tid, &region_pages, addr, lines, &mut self.dram, 0)
                    .expect("writeback on owned pages"),
            };
            mem_finish = mem_finish.max(done);
            if throttled && tr.route.touches_dram() {
                bw_gate = start + (tr.bytes as f64 / (bw_share * peak_bw)).ceil() as Cycle;
            }
            let _ = delay;
        }

        // The wake fires when this phase's memory lands; its compute is
        // charged then, overlapping the next phase's transfers (double
        // buffering).
        let end = mem_finish.max(now + 1);
        let dram_delta = self.dram.stats().total_bytes() - dram_before;
        let t = &mut self.tasks[tid as usize];
        t.inference_dram += dram_delta;
        t.bw_gate = bw_gate;
        t.state = TaskState::Running { phase_idx: idx };
        t.phase_end = end;
        self.events.push(end, tid);
        let _ = group;
    }

    // ---------------------------------------------------------------
    // Layer / inference retirement
    // ---------------------------------------------------------------

    fn wake_page_waiters(&mut self, now: Cycle) {
        for &w in &self.page_waiters {
            self.events.push(now, w);
        }
    }

    fn finish_layer(&mut self, tid: u32, now: Cycle) {
        let mct = self.mct_of(tid).clone();
        let primary = self.tasks[tid as usize].npus[0];
        self.tasks[tid as usize].plan = None;
        let mut released = false;
        // LWM pages live for exactly one layer.
        if let Some(grant) = self.tasks[tid as usize].lwm_grant.take() {
            teardown_region(
                &grant,
                &mut self.alloc,
                &mut self.nec,
                &mut self.npu_cores[primary],
            )
            .expect("lwm teardown");
            released = true;
        }
        // LBM pages live until the block's tail layer retires.
        let t = &self.tasks[tid as usize];
        let next_block = self.mappings[t.model_idx]
            .mcts
            .get(t.cur_layer + 1)
            .map(|m| m.block.id);
        let block_ends = next_block != Some(mct.block.id);
        if t.lbm_block == Some(mct.block.id) && block_ends {
            if let Some(grant) = self.tasks[tid as usize].lbm_grant.take() {
                teardown_region(
                    &grant,
                    &mut self.alloc,
                    &mut self.nec,
                    &mut self.npu_cores[primary],
                )
                .expect("lbm teardown");
                released = true;
            }
            self.tasks[tid as usize].lbm_block = None;
            self.dynalloc.disable_lbm(tid);
        }
        if released {
            self.wake_page_waiters(now);
        }

        let t = &mut self.tasks[tid as usize];
        t.cur_layer += 1;
        if t.cur_layer < self.models[t.model_idx].layers.len() {
            self.try_begin_layer(tid, now, None);
        } else {
            self.finish_inference(tid, now);
        }
    }

    fn finish_inference(&mut self, tid: u32, now: Cycle) {
        let deadline = {
            let t = &self.tasks[tid as usize];
            self.deadline_cycles(t.model_idx)
        };
        let t = &mut self.tasks[tid as usize];
        let latency = now - t.inference_start;
        t.records.push(InferenceRecord {
            latency,
            dram_bytes: t.inference_dram,
            deadline_met: deadline.map(|d| latency <= d).unwrap_or(true),
        });
        t.rounds_done += 1;
        // Release the NPUs and wake queued tasks.
        let released = std::mem::take(&mut t.npus);
        for n in released {
            self.npus_free[n] = true;
        }
        let waiters = std::mem::take(&mut self.npu_waiters);
        for w in waiters {
            self.events.push(now, w);
        }
        let t = &mut self.tasks[tid as usize];
        if t.rounds_done < self.cfg.rounds_per_task {
            t.state = TaskState::WaitingNpu;
            self.events.push(now, tid);
        } else {
            t.state = TaskState::Done;
            self.dynalloc.note_done(tid);
        }
    }

    // ---------------------------------------------------------------
    // Aggregation
    // ---------------------------------------------------------------

    fn aggregate(&self) -> RunResult {
        let skip = self.cfg.warmup_rounds as usize;
        let mut tasks = Vec::with_capacity(self.tasks.len());
        let mut lat_sum = 0.0;
        let mut dram_sum = 0.0;
        for t in &self.tasks {
            let model = &self.models[t.model_idx];
            let mean_lat = t.mean_latency(skip);
            let mean_dram = t.mean_dram_bytes(skip);
            lat_sum += mean_lat;
            dram_sum += mean_dram;
            tasks.push(TaskSummary {
                abbr: model.abbr.clone(),
                qos_ms: model.qos_ms,
                inferences: t.records.len().saturating_sub(skip),
                mean_latency_ms: cycles_to_ms(mean_lat as Cycle),
                mean_dram_mb: mean_dram / 1e6,
                sla_rate: t.sla_rate(skip),
            });
        }
        let n = self.tasks.len().max(1) as f64;
        let cache_hit_rate = if self.cfg.policy.is_camdn() {
            let s = self.nec.stats();
            let served = s.controlled_hits();
            let moved = served
                + s.fills.get()
                + s.writebacks.get()
                + s.bypass_reads.get()
                + s.bypass_writes.get();
            if moved == 0 {
                0.0
            } else {
                served as f64 / moved as f64
            }
        } else {
            self.cache.stats().hit_rate()
        };
        RunResult {
            policy: self.cfg.policy,
            tasks,
            cache_hit_rate,
            avg_latency_ms: cycles_to_ms((lat_sum / n) as Cycle),
            mem_mb_per_model: dram_sum / n / 1e6,
            makespan_ms: cycles_to_ms(self.now),
            multicast_saved_mb: self.nec.stats().multicast_saved_lines.get() as f64
                * self.cfg.soc.cache.line_bytes as f64
                / 1e6,
        }
    }
}

/// Convenience: builds the standard N-tenant workload by cycling the
/// Table I models.
pub fn workload(n: usize) -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    (0..n).map(|i| zoo[i % zoo.len()].clone()).collect()
}

/// Runs one configuration end to end.
pub fn simulate(cfg: EngineConfig, task_models: &[Model]) -> RunResult {
    Engine::new(cfg, task_models).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    fn quick_cfg(policy: PolicyKind) -> EngineConfig {
        EngineConfig {
            rounds_per_task: 2,
            warmup_rounds: 1,
            ..EngineConfig::speedup(policy)
        }
    }

    #[test]
    fn single_task_baseline_completes() {
        let mut cfg = quick_cfg(PolicyKind::SharedBaseline);
        cfg.warmup_rounds = 0; // include the cold round: real DRAM traffic
        let r = simulate(cfg, &[zoo::mobilenet_v2()]);
        assert_eq!(r.tasks.len(), 1);
        assert_eq!(r.tasks[0].inferences, 2);
        assert!(r.tasks[0].mean_latency_ms > 0.0);
        assert!(r.tasks[0].mean_dram_mb > 0.0);
        assert!(r.cache_hit_rate > 0.0, "refetches must hit the big cache");
    }

    #[test]
    fn lone_small_model_runs_warm_from_cache() {
        // MobileNet's 3.5 MB of weights fit a lonely 16 MiB transparent
        // cache: after the warm-up inference, DRAM traffic nearly
        // vanishes — the cross-inference reuse the motivation experiment
        // destroys with co-tenants.
        let r = simulate(quick_cfg(PolicyKind::SharedBaseline), &[zoo::mobilenet_v2()]);
        assert!(
            r.tasks[0].mean_dram_mb < 1.0,
            "warm lone run should be almost DRAM-free, got {:.2} MB",
            r.tasks[0].mean_dram_mb
        );
    }

    #[test]
    fn single_task_camdn_completes_and_frees_pages() {
        let cfg = quick_cfg(PolicyKind::CamdnFull);
        let mut engine = Engine::new(cfg, &[zoo::mobilenet_v2()]);
        let r = engine.run();
        assert_eq!(r.tasks[0].inferences, 1);
        // All cache pages must be back after the run (no leaks).
        assert_eq!(engine.alloc.idle_pages(), engine.alloc.total_pages());
        assert_eq!(engine.nec.claimed_pages(), 0);
    }

    #[test]
    fn camdn_moves_less_dram_than_baseline() {
        let models: Vec<Model> = vec![
            zoo::mobilenet_v2(),
            zoo::efficientnet_b0(),
            zoo::mobilenet_v2(),
            zoo::efficientnet_b0(),
        ];
        let base = simulate(quick_cfg(PolicyKind::SharedBaseline), &models);
        let camdn = simulate(quick_cfg(PolicyKind::CamdnFull), &models);
        assert!(
            camdn.mem_mb_per_model < base.mem_mb_per_model * 1.05,
            "CaMDN {:.1} MB vs baseline {:.1} MB",
            camdn.mem_mb_per_model,
            base.mem_mb_per_model
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let models = vec![zoo::mobilenet_v2(), zoo::gnmt()];
        let a = simulate(quick_cfg(PolicyKind::CamdnFull), &models);
        let b = simulate(quick_cfg(PolicyKind::CamdnFull), &models);
        assert_eq!(a, b);
    }

    #[test]
    fn hw_only_policy_completes() {
        let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
        let r = simulate(quick_cfg(PolicyKind::CamdnHwOnly), &models);
        assert!(r.tasks.iter().all(|t| t.inferences == 1));
    }

    #[test]
    fn qos_mode_tracks_deadlines() {
        let models = vec![zoo::mobilenet_v2(), zoo::mobilenet_v2()];
        let cfg = EngineConfig {
            rounds_per_task: 2,
            warmup_rounds: 1,
            ..EngineConfig::qos(PolicyKind::Aurora, 1.2)
        };
        let r = simulate(cfg, &models);
        for t in &r.tasks {
            assert!(t.sla_rate >= 0.0 && t.sla_rate <= 1.0);
        }
    }

    #[test]
    fn more_tenants_than_npus_queue() {
        // 3 tasks on a 2-NPU SoC must still all complete.
        let mut cfg = quick_cfg(PolicyKind::SharedBaseline);
        cfg.soc.npu.cores = 2;
        let models = vec![
            zoo::mobilenet_v2(),
            zoo::mobilenet_v2(),
            zoo::mobilenet_v2(),
        ];
        let r = simulate(cfg, &models);
        assert!(r.tasks.iter().all(|t| t.inferences == 1));
    }

    #[test]
    fn contention_slows_tasks_down() {
        let one = simulate(quick_cfg(PolicyKind::SharedBaseline), &[zoo::efficientnet_b0()]);
        let many = simulate(
            quick_cfg(PolicyKind::SharedBaseline),
            &workload(16)
                .into_iter()
                .map(|_| zoo::efficientnet_b0())
                .collect::<Vec<_>>(),
        );
        let ef_alone = one.tasks[0].mean_latency_ms;
        let ef_crowd = many.tasks[0].mean_latency_ms;
        assert!(
            ef_crowd > ef_alone,
            "16 tenants ({ef_crowd:.2} ms) must be slower than 1 ({ef_alone:.2} ms)"
        );
    }
}
