//! The engine's concrete scheduler components.
//!
//! The run loop in [`crate::engine`] is organized as a set of phase
//! components over the master event heap ([`crate::sched::Scheduler`]):
//! fault application, the epoch boundary, queue sampling, and the NPU
//! clock domain each own their scheduling state here, while the task
//! state machine itself stays on the `Engine` (it owns the hardware
//! models). Each component mirrors the [`crate::sched::Component`]
//! shape — a `next_tick`-style query plus a tick-time action — but is
//! driven directly by the engine loop rather than boxed into a
//! [`crate::sched::ComponentSet`], because its tick needs `&mut Engine`
//! (the generic set covers the heterogeneous-clock/DVFS substrate and
//! is property-tested standalone; see `docs/ENGINE.md`).
//!
//! Determinism contract: all components observe the exact event
//! sequence the legacy monolithic loop produced — same heap, same
//! insertion order, same FIFO tie-break — so `RunOutput` is bit-for-bit
//! identical between the two loops (proven by
//! `crates/camdn/tests/sched_equivalence.rs`).

use crate::fault::FaultPlan;
use camdn_common::types::Cycle;

/// Scheduling state of the engine's phase components. Owned by the
/// `Engine`; the machine state the ticks mutate stays on the engine.
#[derive(Debug, Clone)]
pub(crate) struct EngineComponents {
    /// Fault-plan application.
    pub fault: FaultComponent,
    /// The (lazy) epoch boundary.
    pub epoch: EpochComponent,
    /// Queue-depth sampling.
    pub sampler: SamplerComponent,
    /// The NPU compute clock domain.
    pub npu_clock: NpuClock,
}

impl EngineComponents {
    /// Components for one run: epoch boundary at `epoch_cycles`,
    /// sampler on an `every`-cycle clock (disabled when `None`), NPU
    /// clock at full rate, fault cursor at the head of the plan.
    pub fn new(epoch_cycles: Cycle, every: Option<Cycle>) -> Self {
        EngineComponents {
            fault: FaultComponent { cursor: 0 },
            epoch: EpochComponent {
                next_epoch: epoch_cycles,
                epoch_cycles,
            },
            sampler: SamplerComponent {
                every,
                next: every.unwrap_or(0),
            },
            npu_clock: NpuClock::full_rate(),
        }
    }
}

/// Applies the fault plan in event order. Its tick is
/// `Engine::apply_next_fault`; fault events carry the `FAULT_EVENT`
/// sentinel payload and are pushed before any arrival, so the FIFO
/// tie-break applies a same-cycle fault before task work at that cycle.
#[derive(Debug, Clone)]
pub(crate) struct FaultComponent {
    /// Next unapplied event of the plan.
    pub cursor: usize,
}

impl FaultComponent {
    /// `next_tick`: master cycle of the next unapplied fault, `None`
    /// once the plan is drained (or absent).
    #[allow(dead_code)] // mirrors the Component shape; the loop drives ticks off the heap
    pub fn next_tick(&self, plan: Option<&FaultPlan>) -> Option<Cycle> {
        plan.and_then(|p| p.events().get(self.cursor)).map(|e| e.at)
    }

    /// Advances past the event just applied, returning its index.
    pub fn advance(&mut self) -> usize {
        let idx = self.cursor;
        self.cursor += 1;
        idx
    }
}

/// The epoch boundary — a *lazy* clock: rather than scheduling its own
/// heap events, it fires piggybacked on the first task event popped at
/// or past the boundary, and the next boundary is measured from that
/// event's cycle (the boundary drifts with activity, exactly like the
/// monolithic loop's `maybe_rebalance`). An idle stretch therefore
/// produces no empty epoch ticks.
#[derive(Debug, Clone)]
pub(crate) struct EpochComponent {
    /// Master cycle at or past which the next epoch tick fires.
    pub next_epoch: Cycle,
    /// Epoch length in master cycles.
    pub epoch_cycles: Cycle,
}

impl EpochComponent {
    /// Whether the boundary has been reached by `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_epoch
    }

    /// Re-arms the boundary one epoch past the tick that fired.
    pub fn advance(&mut self, now: Cycle) {
        self.next_epoch = now + self.epoch_cycles;
    }
}

/// Queue-depth sampling on a fixed-period clock. Unlike the epoch this
/// clock does *not* drift: boundaries are multiples of `every`, and
/// every boundary at or before the current event is drained in order
/// (state only changes at events, so sampling just before the first
/// event at-or-past a boundary observes the state *at* it).
#[derive(Debug, Clone)]
pub(crate) struct SamplerComponent {
    /// Sampling period (`None` disables the component entirely).
    pub every: Option<Cycle>,
    /// Next boundary to sample.
    pub next: Cycle,
}

impl SamplerComponent {
    /// `next_tick`-and-advance: the next due boundary at or before
    /// `now`, or `None` when caught up (or disabled). Call in a loop —
    /// several boundaries may have passed between events.
    pub fn next_due(&mut self, now: Cycle) -> Option<Cycle> {
        let every = self.every?;
        if self.next > now {
            return None;
        }
        let at = self.next;
        self.next += every;
        Some(at)
    }
}

/// The NPU compute clock domain. DVFS (`ClockThrottle` faults) retunes
/// this clock; compute charges route through
/// [`compute_master_cycles`](NpuClock::compute_master_cycles), which
/// divides local compute cycles by the current rate to get master
/// cycles — the clock-divider relationship of `crate::sched`, held in
/// rational (f64) form so the full-rate 1.0 stays IEEE-exact and a
/// fault-free run is untouched bit for bit.
#[derive(Debug, Clone)]
pub(crate) struct NpuClock {
    /// Clock rate relative to the master clock (1.0 = full rate;
    /// a `ClockThrottle { factor }` fault sets it to `factor`).
    scale: f64,
}

impl NpuClock {
    /// A full-rate clock (the fault-free state).
    pub fn full_rate() -> Self {
        NpuClock { scale: 1.0 }
    }

    /// DVFS retune: the fault's throttle factor becomes the new rate.
    pub fn set_rate(&mut self, factor: f64) {
        self.scale = factor;
    }

    /// Master cycles charged for `compute` local compute cycles on a
    /// `group`-wide NPU gang (multi-NPU gangs pay a 10% gang-scaling
    /// tax). At full rate this is IEEE-exact division by the group
    /// throughput alone.
    pub fn compute_master_cycles(&self, compute: Cycle, group: u32) -> Cycle {
        let eff = if group > 1 { 0.9 } else { 1.0 };
        (compute as f64 / (f64::from(group) * eff * self.scale)).ceil() as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_lazy_and_drifts() {
        let mut e = EpochComponent {
            next_epoch: 100,
            epoch_cycles: 100,
        };
        assert!(!e.due(99));
        assert!(e.due(100));
        // The boundary re-arms from the firing event, not the grid.
        e.advance(137);
        assert_eq!(e.next_epoch, 237);
        assert!(e.due(400));
    }

    #[test]
    fn sampler_drains_every_boundary_in_order() {
        let mut s = SamplerComponent {
            every: Some(10),
            next: 10,
        };
        assert_eq!(s.next_due(5), None);
        // Event at 34: boundaries 10, 20, 30 are all due, in order.
        let mut due = Vec::new();
        while let Some(at) = s.next_due(34) {
            due.push(at);
        }
        assert_eq!(due, vec![10, 20, 30]);
        assert_eq!(s.next_due(39), None);
        // Disabled sampler never fires.
        let mut off = SamplerComponent {
            every: None,
            next: 0,
        };
        assert_eq!(off.next_due(u64::MAX), None);
    }

    #[test]
    fn npu_clock_full_rate_is_exact_and_throttle_stretches() {
        let c = NpuClock::full_rate();
        // Single NPU at full rate: identity.
        assert_eq!(c.compute_master_cycles(12_345, 1), 12_345);
        // Gang of 2 pays the 0.9 efficiency: ceil(1000 / 1.8) = 556.
        assert_eq!(c.compute_master_cycles(1000, 2), 556);
        let mut t = NpuClock::full_rate();
        t.set_rate(0.5);
        assert_eq!(t.compute_master_cycles(1000, 1), 2000);
    }

    #[test]
    fn fault_cursor_walks_the_plan() {
        let mut f = FaultComponent { cursor: 0 };
        assert_eq!(f.next_tick(None), None);
        assert_eq!(f.advance(), 0);
        assert_eq!(f.advance(), 1);
        assert_eq!(f.cursor, 2);
    }
}
