//! Physical DRAM layout of one task's tensors.
//!
//! Every task (tenant) owns a disjoint 1 GiB-aligned slab of the physical
//! address space: per-layer weight regions, a model-input region, and an
//! *activation arena* with one region per layer output — the allocation
//! discipline of real inference runtimes, where every intermediate tensor
//! gets its own buffer. Layer `i > 0` reads its input from layer
//! `i − 1`'s output region.
//!
//! The arena is what gives the transparent baseline its Fig. 2/Fig. 3
//! behaviour: an intermediate is written once and re-read after the
//! producer's and consumer's streams have passed through the cache
//! (reuse distances of 1–4 MiB, Fig. 3b). Alone, a 16 MiB cache holds
//! that window and the re-read hits; with many co-located tenants the
//! effective distance multiplies and the reuse is lost — exactly the
//! contention CaMDN's model-exclusive regions eliminate.

use camdn_common::types::PhysAddr;
use camdn_mapper::TensorKind;
use camdn_models::{Model, WeightClass};
use serde::{Deserialize, Serialize};

/// Size of the per-task physical slab (1 GiB).
pub const TASK_SLAB_BYTES: u64 = 1 << 30;

/// Per-task tensor addressing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskLayout {
    base: PhysAddr,
    /// Weight region start per layer (bias follows the weights).
    weight_base: Vec<u64>,
    /// Bias offset within each layer's weight region.
    bias_off: Vec<u64>,
    /// Model-input region (layer 0's input).
    input_base: u64,
    /// Activation arena: output region of each layer.
    act_base: Vec<u64>,
    total: u64,
}

impl TaskLayout {
    /// Builds the layout of `model` inside the slab of task `task_id`.
    ///
    /// # Panics
    ///
    /// Panics if the model exceeds its 1 GiB slab (none in the zoo does).
    pub fn new(task_id: u32, model: &Model) -> Self {
        let base = PhysAddr(u64::from(task_id) * TASK_SLAB_BYTES);
        let mut cursor = 0u64;
        let mut weight_base = Vec::with_capacity(model.layers.len());
        let mut bias_off = Vec::with_capacity(model.layers.len());
        for layer in &model.layers {
            weight_base.push(cursor);
            let w = match layer.weight_class {
                WeightClass::Static => layer.nest.weight_bytes(),
                _ => 0,
            };
            bias_off.push(w);
            let b = match layer.weight_class {
                WeightClass::Static => layer.nest.bias_bytes(),
                _ => 0,
            };
            cursor += round_line(w + b);
        }
        let input_base = cursor;
        cursor += round_line(model.layers.first().map(|l| l.input_bytes()).unwrap_or(0));
        // Activation arena: each layer's output region must also satisfy
        // its consumer's view (input + attention weight-operand bytes).
        let mut act_base = Vec::with_capacity(model.layers.len());
        for (i, layer) in model.layers.iter().enumerate() {
            let mut sz = layer.output_bytes();
            if let Some(next) = model.layers.get(i + 1) {
                let aw = if next.weight_class == WeightClass::Activation {
                    next.weight_operand_bytes()
                } else {
                    0
                };
                sz = sz.max(next.input_bytes() + aw);
            }
            act_base.push(cursor);
            cursor += round_line(sz);
        }
        assert!(
            cursor < TASK_SLAB_BYTES,
            "{} overflows its 1 GiB task slab",
            model.name
        );
        TaskLayout {
            base,
            weight_base,
            bias_off,
            input_base,
            act_base,
            total: cursor,
        }
    }

    /// Physical address of byte `offset` of `tensor` for layer
    /// `layer_idx`.
    ///
    /// Activation weight-operands (attention K/V) live in the producer's
    /// output region after the input bytes; see the module docs.
    pub fn addr_of(
        &self,
        layer_idx: usize,
        tensor: TensorKind,
        weight_is_activation: bool,
        input_bytes: u64,
        offset: u64,
    ) -> PhysAddr {
        let in_region = if layer_idx == 0 {
            self.input_base
        } else {
            self.act_base[layer_idx - 1]
        };
        let rel = match tensor {
            TensorKind::Weight => {
                if weight_is_activation {
                    in_region + input_bytes + offset
                } else {
                    self.weight_base[layer_idx] + offset
                }
            }
            TensorKind::Bias => self.weight_base[layer_idx] + self.bias_off[layer_idx] + offset,
            TensorKind::Input => in_region + offset,
            TensorKind::Output => self.act_base[layer_idx] + offset,
        };
        self.base.offset(rel)
    }

    /// Total slab bytes actually used.
    pub fn used_bytes(&self) -> u64 {
        self.total
    }
}

#[inline]
fn round_line(b: u64) -> u64 {
    b.div_ceil(64) * 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    #[test]
    fn slabs_are_disjoint() {
        let m = zoo::resnet50();
        let a = TaskLayout::new(0, &m);
        let b = TaskLayout::new(1, &m);
        assert!(a.used_bytes() < TASK_SLAB_BYTES);
        let a_end = a.base.0 + a.used_bytes();
        let b_start = b.addr_of(0, TensorKind::Weight, false, 0, 0).0;
        assert!(a_end <= b_start);
    }

    #[test]
    fn producer_output_is_consumer_input() {
        let m = zoo::mobilenet_v2();
        let l = TaskLayout::new(0, &m);
        for i in 0..m.layers.len() - 1 {
            let out_i = l.addr_of(i, TensorKind::Output, false, 0, 0);
            let in_next = l.addr_of(i + 1, TensorKind::Input, false, 0, 0);
            assert_eq!(out_i, in_next, "layer {i}");
        }
    }

    #[test]
    fn intermediate_regions_are_distinct() {
        // Real runtimes give every intermediate its own buffer; no
        // ping-pong address reuse.
        let m = zoo::resnet50();
        let l = TaskLayout::new(0, &m);
        let mut bases: Vec<u64> = (0..m.layers.len())
            .map(|i| l.addr_of(i, TensorKind::Output, false, 0, 0).0)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), m.layers.len());
    }

    #[test]
    fn weights_are_per_layer_disjoint() {
        let m = zoo::gnmt();
        let l = TaskLayout::new(0, &m);
        for i in 0..m.layers.len() - 1 {
            let w_i = l.addr_of(i, TensorKind::Weight, false, 0, 0).0;
            let w_next = l.addr_of(i + 1, TensorKind::Weight, false, 0, 0).0;
            let sz = m.layers[i].static_weight_bytes();
            assert!(w_i + sz <= w_next || sz == 0);
        }
    }

    #[test]
    fn activation_weight_operand_sits_after_input() {
        // The zoo uses fused attention, but un-fused activation matmuls
        // remain supported: their K operand lives in the producer's
        // output region right after the Q bytes.
        use camdn_models::{Domain, Family, Layer, LoopNest, Model, OpKind};
        let m = Model {
            name: "AttnPair".into(),
            abbr: "AP".into(),
            domain: Domain::Nlp,
            family: Family::Transformer,
            qos_ms: 1.0,
            layers: vec![
                Layer::new("qkv", OpKind::Linear, LoopNest::matmul(64, 256, 768)),
                Layer::activation_matmul("qk", LoopNest::batched_matmul(4, 64, 64, 64)),
            ],
        };
        let l = TaskLayout::new(0, &m);
        let input_bytes = m.layers[1].input_bytes();
        let in_addr = l.addr_of(1, TensorKind::Input, false, input_bytes, 0);
        let w_addr = l.addr_of(1, TensorKind::Weight, true, input_bytes, 0);
        assert_eq!(w_addr.0, in_addr.0 + input_bytes);
    }

    #[test]
    fn every_model_fits_its_slab() {
        for m in zoo::all() {
            let l = TaskLayout::new(0, &m);
            assert!(
                l.used_bytes() < TASK_SLAB_BYTES,
                "{} overflows its slab",
                m.name
            );
        }
    }

    #[test]
    fn addresses_stable_across_inferences() {
        // The same layout answers identically every inference: weight and
        // arena addresses repeat, enabling cross-inference cache reuse.
        let m = zoo::mobilenet_v2();
        let l = TaskLayout::new(3, &m);
        let a = l.addr_of(5, TensorKind::Weight, false, 0, 128);
        let b = l.addr_of(5, TensorKind::Weight, false, 0, 128);
        assert_eq!(a, b);
    }
}
