//! Typed errors surfaced by [`Simulation::run`](crate::Simulation::run)
//! and [`SimulationBuilder::build`](crate::SimulationBuilder::build).
//!
//! The engine's hot loop used to `panic!`/`expect` on broken invariants
//! (a region install failing for a reason other than page pressure, a
//! cache operation on pages the task does not own, a running task
//! without a plan). Those conditions now propagate as [`EngineError`]
//! values so embedding services can log, retry with a different
//! configuration, or shed the offending tenant instead of crashing.

use crate::result::RunOutput;
use camdn_common::types::Cycle;
use std::error::Error;
use std::fmt;

/// Which run budget was exhausted (see
/// [`EngineError::BudgetExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The simulated-cycle budget
    /// ([`SimulationBuilder::max_sim_cycles`](crate::SimulationBuilder::max_sim_cycles)).
    SimCycles,
    /// The wall-clock budget
    /// ([`SimulationBuilder::max_wall`](crate::SimulationBuilder::max_wall)).
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::SimCycles => write!(f, "simulated-cycle"),
            BudgetKind::WallClock => write!(f, "wall-clock"),
        }
    }
}

/// Error type of the simulation API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The workload contains no models, so there is nothing to simulate
    /// (and aggregate statistics would be meaningless).
    EmptyWorkload,
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A policy name was not found in the registry.
    UnknownPolicy(String),
    /// Installing or tearing down a cache region failed for a reason
    /// other than page pressure — an ownership or CPT invariant broke.
    Region {
        /// Task whose region operation failed.
        task: u32,
        /// Layer index the task was executing.
        layer: usize,
        /// Underlying region error.
        detail: String,
    },
    /// A controlled-cache operation (fill, read, write, writeback,
    /// multicast) was rejected by the NPU-exclusive controller.
    Cache {
        /// Task whose access was rejected.
        task: u32,
        /// Which operation was attempted.
        op: &'static str,
        /// Underlying NEC error.
        detail: String,
    },
    /// A task was scheduled to execute without a lowered layer plan.
    MissingPlan {
        /// Task missing its plan.
        task: u32,
        /// Layer index the task was executing.
        layer: usize,
    },
    /// A policy returned a decision that does not match the layer's
    /// mapping candidate table.
    BadDecision {
        /// Task the decision was made for.
        task: u32,
        /// Layer index the decision applies to.
        layer: usize,
    },
    /// The simulation panicked (an internal invariant `assert!` fired,
    /// or a custom policy panicked). Sweep executors catch the unwind
    /// and surface it as this variant so one broken cell cannot abort a
    /// whole grid.
    Panicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// An I/O operation on behalf of a run failed (e.g. the sweep
    /// layer's streamed JSONL cell log could not be written or read).
    Io {
        /// The underlying I/O error, as text.
        detail: String,
    },
    /// A run budget expired before every task finished. The work
    /// simulated up to the cut-off is aggregated into `partial` — a
    /// truncated cell reports what it measured instead of running away.
    BudgetExceeded {
        /// Which budget tripped.
        budget: BudgetKind,
        /// Simulated cycle at which the run was cut off.
        at_cycle: Cycle,
        /// Aggregated output of the truncated run (boxed: the variant
        /// would otherwise dominate the size of every `Result`).
        partial: Box<RunOutput>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyWorkload => write!(f, "workload contains no models"),
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::UnknownPolicy(name) => {
                write!(f, "policy '{name}' is not registered")
            }
            EngineError::Region {
                task,
                layer,
                detail,
            } => write!(
                f,
                "region invariant broken for task {task} at layer {layer}: {detail}"
            ),
            EngineError::Cache { task, op, detail } => {
                write!(
                    f,
                    "controlled cache {op} rejected for task {task}: {detail}"
                )
            }
            EngineError::MissingPlan { task, layer } => {
                write!(f, "task {task} has no plan at layer {layer}")
            }
            EngineError::BadDecision { task, layer } => write!(
                f,
                "policy decision for task {task} does not match the MCT of layer {layer}"
            ),
            EngineError::Panicked { detail } => {
                write!(f, "simulation panicked: {detail}")
            }
            EngineError::Io { detail } => write!(f, "i/o failed: {detail}"),
            EngineError::BudgetExceeded {
                budget, at_cycle, ..
            } => write!(f, "{budget} budget exceeded at cycle {at_cycle}"),
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::Cache {
            task: 3,
            op: "fill",
            detail: "page 12 owned by task 1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("fill") && s.contains("task 3"), "{s}");
        assert!(EngineError::EmptyWorkload.to_string().contains("no models"));
    }
}
