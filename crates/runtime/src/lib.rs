//! Multi-tenant execution engine, baseline schedulers and QoS metrics
//! for the CaMDN reproduction (Section IV of the paper).
//!
//! The engine ([`Engine`]) simulates co-located DNN tasks on the
//! NPU-integrated SoC of Table II under five system configurations
//! ([`PolicyKind`]): the plain shared-cache baseline of the motivation
//! experiment, reimplementations of the MoCA and AuRORA schedulers, and
//! the two CaMDN variants.
//!
//! # Example
//!
//! ```no_run
//! use camdn_runtime::{simulate, workload, EngineConfig, PolicyKind};
//!
//! // Four co-located models on the Table II SoC, full CaMDN.
//! let result = simulate(
//!     EngineConfig::speedup(PolicyKind::CamdnFull),
//!     &workload(4),
//! );
//! println!("avg latency {:.2} ms", result.avg_latency_ms);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod layout;
pub mod metrics;
pub mod task;

pub use engine::{simulate, workload, Engine, EngineConfig, PolicyKind, RunResult, TaskSummary};
pub use layout::TaskLayout;
pub use metrics::{qos_metrics, QosMetrics};
pub use task::{InferenceRecord, Task, TaskState};
