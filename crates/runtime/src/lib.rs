//! Multi-tenant execution engine, pluggable scheduling policies,
//! workload scenarios and QoS metrics for the CaMDN reproduction
//! (Section IV of the paper).
//!
//! The engine ([`Engine`]) simulates co-located DNN tasks on the
//! NPU-integrated SoC of Table II. Scheduling is delegated to a
//! [`Policy`] object; the five systems evaluated in the paper ship as
//! built-ins named by [`PolicyKind`], and custom systems plug in
//! through [`register_policy`] or
//! [`SimulationBuilder::policy_instance`]. *When* inferences arrive is
//! a [`Workload`] scenario: the paper's closed loop, open-loop Poisson
//! traffic, or bursty arrivals.
//!
//! # Example
//!
//! ```no_run
//! use camdn_runtime::{PolicyKind, Simulation, Workload};
//!
//! // Four co-located models on the Table II SoC, full CaMDN.
//! let models = camdn_models::zoo::all().into_iter().take(4).collect();
//! let result = Simulation::builder()
//!     .policy(PolicyKind::CamdnFull)
//!     .workload(Workload::closed(models, 3))
//!     .run()
//!     .expect("valid configuration");
//! println!("avg latency {:.2} ms", result.summary.avg_latency_ms);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

mod components;
pub mod engine;
pub mod error;
pub mod fault;
pub mod layout;
pub mod metrics;
pub mod policies;
pub mod result;
pub mod scenario;
pub mod sched;
pub mod sim;
pub mod task;

pub use camdn_cache::CacheScratchPool;
#[allow(deprecated)]
pub use engine::{simulate, workload, EngineConfig};
pub use engine::{Engine, PolicyKind};
pub use error::{BudgetKind, EngineError};
pub use fault::{FaultEvent, FaultGenConfig, FaultKind, FaultPlan};
pub use layout::TaskLayout;
pub use metrics::{qos_metrics, QosMetrics};
pub use policies::{
    builtin_policy, create_policy, register_policy, registered_policies, AllocFailure, EpochSlot,
    InstallEvent, PartitionCtx, Policy, PolicyCapabilities, PolicyRegistry, Selection,
};
#[allow(deprecated)]
pub use result::RunResult;
pub use result::{
    DetailLevel, LatencyTail, QueueSample, RunDetail, RunOutput, RunSummary, TaskSummary,
    LATENCY_HIST_BUCKETS, LATENCY_HIST_EDGES,
};
pub use scenario::{ArrivalProcess, Workload};
pub use sched::{
    CompId, Component, ComponentClock, ComponentSet, FiredTick, SchedError, SchedSummary,
    Scheduler, TickCtx,
};
pub use sim::{Simulation, SimulationBuilder};
pub use task::{InferenceRecord, Task, TaskState};
