//! Task (tenant) state for the multi-tenant engine.

use crate::layout::TaskLayout;
use camdn_common::types::Cycle;
use camdn_core::{Decision, RegionGrant};
use camdn_mapper::LayerPlan;
use serde::{Deserialize, Serialize};

/// Execution state of a task.
///
/// `Copy` on purpose: the engine's event loop matches on a task's state
/// once per event, and a by-value copy of this small enum (the pending
/// [`Decision`] is itself `Copy`) keeps that hot path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for a free NPU to start the next inference.
    WaitingNpu,
    /// Waiting for cache pages (CaMDN-Full only); retried on page
    /// releases and degraded at `deadline`.
    WaitingPages {
        /// The pending allocation decision.
        decision: Decision,
    },
    /// Executing the phase at this index of the current plan.
    Running {
        /// Index of the in-flight phase.
        phase_idx: usize,
    },
    /// All rounds completed.
    Done,
}

/// Record of one completed inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRecord {
    /// End-to-end latency in cycles.
    pub latency: Cycle,
    /// DRAM bytes attributed to this inference.
    pub dram_bytes: u64,
    /// Whether the QoS deadline was met (always true without QoS).
    pub deadline_met: bool,
}

/// One co-located tenant.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task id (also its NEC ownership id).
    pub id: u32,
    /// Index into the engine's model/mapping tables.
    pub model_idx: usize,
    /// Physical tensor layout.
    pub layout: TaskLayout,
    /// Current state.
    pub state: TaskState,
    /// NPUs currently assigned (first is the primary).
    pub npus: Vec<usize>,
    /// Layer currently executing.
    pub cur_layer: usize,
    /// Unrolled plan of the current layer.
    pub plan: Option<LayerPlan>,
    /// Whether the current layer reads cached tensors via multicast.
    pub group: u32,
    /// Region grant for the current layer (LWM).
    pub lwm_grant: Option<RegionGrant>,
    /// Region grant for the active LBM block.
    pub lbm_grant: Option<RegionGrant>,
    /// Block id the LBM grant belongs to.
    pub lbm_block: Option<u32>,
    /// True when the current layer executes its LBM candidate.
    pub cur_is_lbm: bool,
    /// Completed inferences.
    pub rounds_done: u32,
    /// Start cycle of the inference in flight.
    pub inference_start: Cycle,
    /// DRAM bytes accumulated for the inference in flight.
    pub inference_dram: u64,
    /// Completion time of the in-flight phase's memory (stale-event
    /// guard: the next wake is scheduled here).
    pub phase_end: Cycle,
    /// PE-array busy horizon: compute of phase `k` starts once its
    /// memory is in and the previous phase's compute retired
    /// (double-buffered pipeline).
    pub compute_horizon: Cycle,
    /// Bandwidth-throttle horizon (MoCA-style regulation).
    pub bw_gate: Cycle,
    /// Current bandwidth share in `(0, 1]`.
    pub bw_share: f64,
    /// NPUs this task should use for its next inference.
    pub npu_quota: u32,
    /// Completed inference records.
    pub records: Vec<InferenceRecord>,
    /// Stale-event guard while waiting out a fault-retry back-off: an
    /// NPU is not requested before this cycle.
    pub retry_at: Cycle,
    /// Kills the in-flight inference has survived (reset per
    /// inference; bounded by
    /// [`MAX_INFERENCE_RETRIES`](crate::fault::MAX_INFERENCE_RETRIES)).
    pub attempt: u32,
    /// Inferences re-queued after an NPU failure (run total).
    pub retried: u64,
    /// Inferences dropped after exhausting the retry budget.
    pub dropped: u64,
    /// Arrivals shed by deadline-aware admission control.
    pub shed: u64,
}

impl Task {
    /// Creates a fresh task.
    pub fn new(id: u32, model_idx: usize, layout: TaskLayout) -> Self {
        Task {
            id,
            model_idx,
            layout,
            state: TaskState::WaitingNpu,
            npus: Vec::new(),
            cur_layer: 0,
            plan: None,
            group: 1,
            lwm_grant: None,
            lbm_grant: None,
            lbm_block: None,
            cur_is_lbm: false,
            rounds_done: 0,
            inference_start: 0,
            inference_dram: 0,
            phase_end: 0,
            compute_horizon: 0,
            bw_gate: 0,
            bw_share: 1.0,
            npu_quota: 1,
            records: Vec::new(),
            retry_at: 0,
            attempt: 0,
            retried: 0,
            dropped: 0,
            shed: 0,
        }
    }

    /// Mean latency over records `skip..`, in cycles.
    pub fn mean_latency(&self, skip: usize) -> f64 {
        let recs = &self.records[skip.min(self.records.len())..];
        if recs.is_empty() {
            return 0.0;
        }
        recs.iter().map(|r| r.latency as f64).sum::<f64>() / recs.len() as f64
    }

    /// Mean DRAM bytes per inference over records `skip..`.
    pub fn mean_dram_bytes(&self, skip: usize) -> f64 {
        let recs = &self.records[skip.min(self.records.len())..];
        if recs.is_empty() {
            return 0.0;
        }
        recs.iter().map(|r| r.dram_bytes as f64).sum::<f64>() / recs.len() as f64
    }

    /// Fraction of measured inferences that met their deadline.
    pub fn sla_rate(&self, skip: usize) -> f64 {
        let recs = &self.records[skip.min(self.records.len())..];
        if recs.is_empty() {
            return 1.0;
        }
        recs.iter().filter(|r| r.deadline_met).count() as f64 / recs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    #[test]
    fn record_aggregation() {
        let m = zoo::mobilenet_v2();
        let mut t = Task::new(0, 0, TaskLayout::new(0, &m));
        t.records.push(InferenceRecord {
            latency: 100,
            dram_bytes: 1000,
            deadline_met: false,
        });
        t.records.push(InferenceRecord {
            latency: 300,
            dram_bytes: 3000,
            deadline_met: true,
        });
        assert_eq!(t.mean_latency(0), 200.0);
        assert_eq!(t.mean_latency(1), 300.0);
        assert_eq!(t.mean_dram_bytes(1), 3000.0);
        assert_eq!(t.sla_rate(0), 0.5);
        assert_eq!(t.sla_rate(1), 1.0);
    }

    #[test]
    fn empty_records_are_safe() {
        let m = zoo::gnmt();
        let t = Task::new(0, 0, TaskLayout::new(0, &m));
        assert_eq!(t.mean_latency(0), 0.0);
        assert_eq!(t.sla_rate(0), 1.0);
    }
}
