//! Pluggable scheduling policies.
//!
//! The engine core is a deterministic discrete-event machine; *how*
//! resources are scheduled — cache pages, DRAM bandwidth shares, NPU
//! groups — is delegated to a [`Policy`] object through a small set of
//! hooks. The five systems evaluated in the paper ship as built-ins:
//!
//! | Module | System |
//! |---|---|
//! | [`baseline`] | plain shared transparent cache |
//! | [`moca`] | MoCA-style bandwidth partitioning |
//! | [`aurora`] | AuRORA-style NPU + bandwidth co-allocation |
//! | [`camdn_hw`] | CaMDN architecture, static equal cache split |
//! | [`camdn_full`] | full CaMDN co-design (Algorithm 1) |
//!
//! Custom policies implement [`Policy`] and are either passed straight
//! to [`SimulationBuilder::policy_instance`](crate::SimulationBuilder::policy_instance)
//! or registered by name through [`register_policy`] /
//! [`PolicyRegistry`] so configuration layers can refer to them as
//! strings.

pub mod aurora;
pub mod baseline;
pub mod camdn_full;
pub mod camdn_hw;
pub mod moca;

pub use aurora::Aurora;
pub use baseline::SharedBaseline;
pub use camdn_full::CamdnFull;
pub use camdn_hw::CamdnHwOnly;
pub use moca::Moca;

use crate::engine::PolicyKind;
use crate::error::EngineError;
use camdn_common::types::Cycle;
use camdn_core::Decision;
use camdn_mapper::Mct;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// What the engine must provision for a policy.
///
/// Capabilities are structural: they decide which engine mechanisms run
/// (cache way partitioning, epoch rebalancing, multi-NPU dispatch), not
/// how the policy uses them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyCapabilities {
    /// The policy drives the NPU-controlled cache: the engine partitions
    /// the NPU ways at startup, routes layer plans through the NEC, and
    /// reports the controlled hit rate.
    pub partitions_cache: bool,
    /// The policy reassigns DRAM bandwidth shares at scheduling epochs
    /// (QoS mode only); the engine throttles DRAM-touching transfers by
    /// each task's share.
    pub reallocates_shares: bool,
    /// The policy assigns multi-NPU groups (QoS mode only); the engine
    /// dispatches up to `npu_quota` cores per task.
    pub npu_groups: bool,
}

/// One-time setup context passed to [`Policy::partition`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionCtx {
    /// Number of co-located tasks.
    pub num_tasks: usize,
    /// Pages of the NPU cache subspace.
    pub npu_pages: u32,
    /// NPU cores on the SoC.
    pub npu_cores: u32,
    /// Whether the run is in QoS (deadline) mode.
    pub qos: bool,
}

/// Per-task view handed to [`Policy::on_epoch`]; the policy reads the
/// progress fields and writes `bw_share` / `npu_quota`.
#[derive(Debug, Clone, Copy)]
pub struct EpochSlot {
    /// False once the task has retired all its inferences.
    pub active: bool,
    /// Deadline of the inference in flight, in cycles.
    pub deadline_cycles: Cycle,
    /// Total layers of the task's model.
    pub total_layers: usize,
    /// Layer currently executing.
    pub cur_layer: usize,
    /// Start cycle of the inference in flight.
    pub inference_start: Cycle,
    /// Isolated-latency estimate for a full inference, in cycles.
    pub iso_est_cycles: Cycle,
    /// DRAM bandwidth share in `(0, 1]` (in/out).
    pub bw_share: f64,
    /// NPU cores the task should use next (in/out).
    pub npu_quota: u32,
}

/// A policy's answer for how a layer should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Cache-unaware baseline candidate, lowered through the
    /// transparent shared-cache path.
    Transparent,
    /// A CaMDN decision over the layer's mapping candidate table,
    /// lowered through the NPU-controlled path.
    Camdn(Decision),
}

/// What to do when the pages a decision needs are not available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocFailure {
    /// Retry immediately with this cheaper decision.
    Degrade(Decision),
    /// Sleep until pages free up or the decision's timeout expires.
    Wait,
}

/// Facts about a successful region install, for policy book-keeping.
#[derive(Debug, Clone, Copy)]
pub struct InstallEvent {
    /// Block id when the install granted (or re-used) an LBM region.
    pub lbm_block: Option<u32>,
    /// Pages the task holds after the install.
    pub held_pages: u32,
    /// Predicted completion cycle of the layer (`now + est_cycles`).
    pub est_finish: Cycle,
    /// Median page demand of the task's next layer (0 at the tail).
    pub next_pneed: u32,
}

/// A pluggable scheduling policy.
///
/// All hooks have no-op defaults except [`label`](Policy::label),
/// [`capabilities`](Policy::capabilities) and
/// [`select_candidate`](Policy::select_candidate); a minimal
/// transparent-cache policy only implements those three.
///
/// The trait is object-safe: the engine holds a `Box<dyn Policy>`, and
/// the registry stores factories producing fresh boxed instances per
/// run.
pub trait Policy: Send {
    /// Display label used by results and the experiment harness.
    fn label(&self) -> &str;

    /// Which engine mechanisms this policy drives.
    fn capabilities(&self) -> PolicyCapabilities;

    /// One-time resource partitioning before the run starts (e.g. the
    /// static equal split, or sizing Algorithm 1's prediction tables).
    fn partition(&mut self, _ctx: &PartitionCtx) {}

    /// Scheduling-epoch rebalance (QoS mode, only called when
    /// [`PolicyCapabilities::reallocates_shares`] is set): adjust
    /// `bw_share` / `npu_quota` of the active slots.
    fn on_epoch(&mut self, _now: Cycle, _npu_budget: usize, _slots: &mut [EpochSlot]) {}

    /// Selects how the current layer of `task` should run.
    fn select_candidate(
        &mut self,
        now: Cycle,
        task: u32,
        mct: &Mct,
        lbm_active: bool,
        idle_pages: u32,
    ) -> Selection;

    /// Called when `decision`'s pages could not be acquired. The default
    /// degrades to the next-cheaper candidate immediately.
    fn on_alloc_failure(
        &mut self,
        _now: Cycle,
        _task: u32,
        mct: &Mct,
        decision: &Decision,
    ) -> AllocFailure {
        AllocFailure::Degrade(camdn_core::degrade_decision(mct, decision.pneed))
    }

    /// Called after a region install (or zero-page LBM enable) succeeds.
    fn on_install(&mut self, _now: Cycle, _task: u32, _ev: &InstallEvent) {}

    /// Called when a layer retires. `lbm_block_ended` is set when the
    /// layer was the tail of a block whose LBM region was active.
    fn on_layer_retire(&mut self, _now: Cycle, _task: u32, _lbm_block_ended: bool) {}

    /// Called when a task finishes its last inference.
    fn on_task_done(&mut self, _task: u32) {}

    /// Overrides a look-ahead style tuning knob, when the policy has
    /// one (Algorithm 1's prediction horizon). No-op otherwise.
    fn set_lookahead(&mut self, _factor: f64) {}

    /// Called after a fault event changes the machine's capacity
    /// mid-run (an NPU dropping out or returning, a DRAM channel
    /// degrading, the clock throttling). `ctx` carries the *surviving*
    /// resource counts.
    ///
    /// The default re-runs [`Policy::partition`] against the new
    /// context — a proportional re-split of whatever the policy
    /// partitioned at startup. The CaMDN built-ins override this to
    /// re-run their allocation step explicitly. Only ever called when
    /// a [`FaultPlan`](crate::FaultPlan) is active, so fault-free runs
    /// are untouched.
    fn on_topology_change(&mut self, _now: Cycle, ctx: &PartitionCtx) {
        self.partition(ctx);
    }
}

/// Creates a fresh boxed instance of a built-in policy.
pub fn builtin_policy(kind: PolicyKind) -> Box<dyn Policy> {
    match kind {
        PolicyKind::SharedBaseline => Box::new(SharedBaseline::new()),
        PolicyKind::Moca => Box::new(Moca::new()),
        PolicyKind::Aurora => Box::new(Aurora::new()),
        PolicyKind::CamdnHwOnly => Box::new(CamdnHwOnly::new()),
        PolicyKind::CamdnFull => Box::new(CamdnFull::new()),
    }
}

/// Factory producing a fresh policy instance per simulation.
pub type PolicyFactory = Arc<dyn Fn() -> Box<dyn Policy> + Send + Sync>;

/// Name-indexed registry of policy factories.
///
/// A registry pre-populated with the five built-ins backs
/// [`SimulationBuilder::policy_named`](crate::SimulationBuilder::policy_named);
/// downstream crates add their own systems with
/// [`register`](PolicyRegistry::register) (or the process-global
/// [`register_policy`]) without touching `camdn-runtime`.
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    factories: BTreeMap<String, PolicyFactory>,
}

impl PolicyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry holding the five built-in systems under their kind
    /// names (`baseline`, `moca`, `aurora`, `camdn-hw`, `camdn-full`).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        for kind in PolicyKind::ALL {
            reg.register(kind.name(), move || builtin_policy(kind));
        }
        reg
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> Box<dyn Policy> + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Arc::new(factory));
    }

    /// Instantiates the policy registered under `name`.
    pub fn create(&self, name: &str) -> Result<Box<dyn Policy>, EngineError> {
        self.factories
            .get(name)
            .map(|f| f())
            .ok_or_else(|| EngineError::UnknownPolicy(name.to_string()))
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }
}

fn global_registry() -> &'static RwLock<PolicyRegistry> {
    static GLOBAL: OnceLock<RwLock<PolicyRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(PolicyRegistry::with_builtins()))
}

/// Registers a policy factory in the process-global registry used by
/// [`SimulationBuilder::policy_named`](crate::SimulationBuilder::policy_named).
pub fn register_policy<F>(name: &str, factory: F)
where
    F: Fn() -> Box<dyn Policy> + Send + Sync + 'static,
{
    global_registry()
        .write()
        // camdn-lint: allow(panic-in-lib, reason = "RwLock poisoning only follows a panic on another thread; propagating it would mask that panic")
        .expect("policy registry poisoned")
        .register(name, factory);
}

/// Instantiates a policy from the process-global registry.
pub fn create_policy(name: &str) -> Result<Box<dyn Policy>, EngineError> {
    global_registry()
        .read()
        // camdn-lint: allow(panic-in-lib, reason = "RwLock poisoning only follows a panic on another thread; propagating it would mask that panic")
        .expect("policy registry poisoned")
        .create(name)
}

/// Names registered in the process-global registry, sorted.
pub fn registered_policies() -> Vec<String> {
    global_registry()
        .read()
        // camdn-lint: allow(panic-in-lib, reason = "RwLock poisoning only follows a panic on another thread; propagating it would mask that panic")
        .expect("policy registry poisoned")
        .names()
}

/// Urgency-proportional share rebalance used by the MoCA, AuRORA and
/// CaMDN-Full built-ins: tasks predicted to miss their deadline receive
/// larger bandwidth shares and (where supported) more NPUs.
pub(crate) fn urgency_rebalance(now: Cycle, npu_budget: usize, slots: &mut [EpochSlot]) {
    let mut urgencies = vec![0.0f64; slots.len()];
    let mut total = 0.0;
    for (i, s) in slots.iter().enumerate() {
        if !s.active {
            continue;
        }
        let deadline = s.deadline_cycles.max(1) as f64;
        let frac_left = 1.0 - s.cur_layer as f64 / s.total_layers as f64;
        let elapsed = now.saturating_sub(s.inference_start) as f64;
        let predicted = elapsed + s.iso_est_cycles as f64 * frac_left;
        let u = (predicted / deadline).clamp(0.05, 20.0);
        urgencies[i] = u;
        total += u;
    }
    if total <= 0.0 {
        return;
    }
    let budget = npu_budget as f64;
    for (i, s) in slots.iter_mut().enumerate() {
        if !s.active {
            continue;
        }
        s.bw_share = (urgencies[i] / total).max(0.02);
        s.npu_quota = ((urgencies[i] / total * budget).round() as u32).clamp(1, 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_registered_under_kind_names() {
        let reg = PolicyRegistry::with_builtins();
        for kind in PolicyKind::ALL {
            assert!(reg.contains(kind.name()), "{kind:?}");
            let p = reg.create(kind.name()).unwrap();
            assert_eq!(p.label(), kind.label());
        }
        assert!(matches!(
            reg.create("nope"),
            Err(EngineError::UnknownPolicy(_))
        ));
    }

    #[test]
    fn custom_registration_overrides_and_lists() {
        let mut reg = PolicyRegistry::with_builtins();
        reg.register("custom", || Box::new(SharedBaseline::new()));
        assert!(reg.contains("custom"));
        assert!(reg.names().contains(&"custom".to_string()));
    }

    #[test]
    fn urgency_rebalance_favors_late_tasks() {
        let slot = |start: Cycle| EpochSlot {
            active: true,
            deadline_cycles: 1_000_000,
            total_layers: 10,
            cur_layer: 5,
            inference_start: start,
            iso_est_cycles: 800_000,
            bw_share: 0.5,
            npu_quota: 1,
        };
        // The task that started earlier (more elapsed time) is more
        // urgent and must receive at least as large a share.
        let mut slots = [slot(0), slot(900_000)];
        urgency_rebalance(1_000_000, 16, &mut slots);
        assert!(slots[0].bw_share >= slots[1].bw_share);
        let sum: f64 = slots.iter().map(|s| s.bw_share).sum();
        assert!(sum <= 1.1, "shares stay near a unit budget, got {sum}");
    }
}
