//! The full CaMDN co-design: Algorithm 1's predictive dynamic cache
//! allocation, plus AuRORA-style bandwidth/NPU allocation in QoS mode
//! (Section IV-A3).

use super::{
    AllocFailure, EpochSlot, InstallEvent, PartitionCtx, Policy, PolicyCapabilities, Selection,
};
use camdn_common::types::Cycle;
use camdn_core::{Decision, DynamicAllocator};
use camdn_mapper::Mct;

/// The `CaMDN(Full)` system: NPU-controlled cache scheduled by
/// Algorithm 1 (predict availability, enable LBM, degrade on timeout).
#[derive(Debug, Clone)]
pub struct CamdnFull {
    alloc: DynamicAllocator,
}

impl CamdnFull {
    /// Creates the full co-design policy; prediction tables are sized at
    /// [`partition`](Policy::partition) time.
    pub fn new() -> Self {
        CamdnFull {
            alloc: DynamicAllocator::new(0),
        }
    }
}

impl Default for CamdnFull {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for CamdnFull {
    fn label(&self) -> &str {
        "CaMDN(Full)"
    }

    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities {
            partitions_cache: true,
            reallocates_shares: true,
            npu_groups: true,
        }
    }

    fn partition(&mut self, ctx: &PartitionCtx) {
        let lookahead = self.alloc.lookahead;
        self.alloc = DynamicAllocator::new(ctx.num_tasks);
        self.alloc.lookahead = lookahead;
    }

    fn on_epoch(&mut self, now: Cycle, npu_budget: usize, slots: &mut [EpochSlot]) {
        super::urgency_rebalance(now, npu_budget, slots);
    }

    fn select_candidate(
        &mut self,
        now: Cycle,
        task: u32,
        mct: &Mct,
        _lbm_active: bool,
        idle_pages: u32,
    ) -> Selection {
        Selection::Camdn(self.alloc.select(now, task, mct, idle_pages))
    }

    fn on_alloc_failure(
        &mut self,
        now: Cycle,
        _task: u32,
        mct: &Mct,
        decision: &Decision,
    ) -> AllocFailure {
        // Algorithm 1's timeout/degrade protocol: wait for pages until
        // the decision's deadline, then fall back to a cheaper
        // candidate.
        let expired = decision.timeout.map(|dl| now >= dl).unwrap_or(true);
        if expired {
            AllocFailure::Degrade(self.alloc.degrade(mct, decision.pneed))
        } else {
            AllocFailure::Wait
        }
    }

    fn on_install(&mut self, _now: Cycle, task: u32, ev: &InstallEvent) {
        if let Some(block) = ev.lbm_block {
            self.alloc.enable_lbm(task, block);
        }
        // Book-keeping for predAvailPages: when this task will
        // reallocate next and how much it will need.
        self.alloc
            .note_alloc(task, ev.held_pages, ev.est_finish, ev.next_pneed);
    }

    fn on_layer_retire(&mut self, _now: Cycle, task: u32, lbm_block_ended: bool) {
        if lbm_block_ended {
            self.alloc.disable_lbm(task);
        }
    }

    fn on_task_done(&mut self, task: u32) {
        self.alloc.note_done(task);
    }

    fn set_lookahead(&mut self, factor: f64) {
        self.alloc.lookahead = factor;
    }

    fn on_topology_change(&mut self, _now: Cycle, ctx: &PartitionCtx) {
        // Re-run Algorithm 1's allocation step against the surviving
        // resources: fresh prediction tables, look-ahead preserved.
        // In-flight page ownership lives in the NEC, so stale
        // predAvail entries only make the next few decisions more
        // conservative. LBM activations must survive the reset: a task
        // mid-block still holds its installed block grant, and
        // forgetting that would hand it an overlapping LWM region.
        let old = std::mem::replace(&mut self.alloc, DynamicAllocator::new(ctx.num_tasks));
        self.alloc.lookahead = old.lookahead;
        for task in 0..old.num_tasks() as u32 {
            if let Some(block) = old.lbm_block(task) {
                self.alloc.enable_lbm(task, block);
            }
        }
    }
}
