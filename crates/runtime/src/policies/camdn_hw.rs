//! CaMDN architecture with a static equal split of the NPU subspace
//! (the paper's `CaMDN(HW-only)` ablation).

use super::{PartitionCtx, Policy, PolicyCapabilities, Selection};
use camdn_common::types::Cycle;
use camdn_core::StaticPolicy;
use camdn_mapper::Mct;

/// The `CaMDN(HW-only)` system: NPU-controlled cache with a fixed
/// per-task page quota and no dynamic scheduling (so no LBM — that is
/// what Algorithm 1 adds).
#[derive(Debug, Clone, Copy)]
pub struct CamdnHwOnly {
    quota: StaticPolicy,
}

impl CamdnHwOnly {
    /// Creates the HW-only policy; the quota is fixed at
    /// [`partition`](Policy::partition) time.
    pub fn new() -> Self {
        CamdnHwOnly {
            quota: StaticPolicy::equal_split(0, 1),
        }
    }
}

impl Default for CamdnHwOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for CamdnHwOnly {
    fn label(&self) -> &str {
        "CaMDN(HW-only)"
    }

    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities {
            partitions_cache: true,
            reallocates_shares: false,
            npu_groups: false,
        }
    }

    fn partition(&mut self, ctx: &PartitionCtx) {
        self.quota = StaticPolicy::equal_split(ctx.npu_pages, ctx.num_tasks as u32);
    }

    fn select_candidate(
        &mut self,
        _now: Cycle,
        _task: u32,
        mct: &Mct,
        lbm_active: bool,
        _idle_pages: u32,
    ) -> Selection {
        Selection::Camdn(self.quota.select(mct, lbm_active))
    }

    // Static quotas guarantee availability; the default on_alloc_failure
    // (immediate degrade) is the right defensive behavior if they ever
    // don't.

    fn on_topology_change(&mut self, _now: Cycle, ctx: &PartitionCtx) {
        // Re-run the static equal split over the surviving capacity.
        self.quota = camdn_core::StaticPolicy::equal_split(ctx.npu_pages, ctx.num_tasks as u32);
    }
}
