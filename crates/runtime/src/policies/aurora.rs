//! AuRORA-style dynamic NPU + bandwidth co-allocation \[13\] on a
//! transparent cache.

use super::{EpochSlot, Policy, PolicyCapabilities, Selection};
use camdn_common::types::Cycle;
use camdn_mapper::Mct;

/// The `AuRORA` system: urgency-driven bandwidth shares *and* multi-NPU
/// groups over the transparent cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aurora;

impl Aurora {
    /// Creates the AuRORA policy.
    pub fn new() -> Self {
        Aurora
    }
}

impl Policy for Aurora {
    fn label(&self) -> &str {
        "AuRORA"
    }

    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities {
            partitions_cache: false,
            reallocates_shares: true,
            npu_groups: true,
        }
    }

    fn on_epoch(&mut self, now: Cycle, npu_budget: usize, slots: &mut [EpochSlot]) {
        super::urgency_rebalance(now, npu_budget, slots);
    }

    fn select_candidate(
        &mut self,
        _now: Cycle,
        _task: u32,
        _mct: &Mct,
        _lbm_active: bool,
        _idle_pages: u32,
    ) -> Selection {
        Selection::Transparent
    }
}
