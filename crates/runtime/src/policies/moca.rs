//! MoCA-style dynamic memory-bandwidth partitioning \[8\] on a
//! transparent cache.

use super::{EpochSlot, Policy, PolicyCapabilities, Selection};
use camdn_common::types::Cycle;
use camdn_mapper::Mct;

/// The `MoCA` system: urgency-driven DRAM bandwidth shares over the
/// transparent cache; single-NPU dispatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Moca;

impl Moca {
    /// Creates the MoCA policy.
    pub fn new() -> Self {
        Moca
    }
}

impl Policy for Moca {
    fn label(&self) -> &str {
        "MoCA"
    }

    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities {
            partitions_cache: false,
            reallocates_shares: true,
            npu_groups: false,
        }
    }

    fn on_epoch(&mut self, now: Cycle, npu_budget: usize, slots: &mut [EpochSlot]) {
        super::urgency_rebalance(now, npu_budget, slots);
    }

    fn select_candidate(
        &mut self,
        _now: Cycle,
        _task: u32,
        _mct: &Mct,
        _lbm_active: bool,
        _idle_pages: u32,
    ) -> Selection {
        Selection::Transparent
    }
}
