//! Plain shared transparent cache, no resource scheduling (the
//! motivation experiment of Fig. 2).

use super::{Policy, PolicyCapabilities, Selection};
use camdn_common::types::Cycle;
use camdn_mapper::Mct;

/// The `Baseline` system: every task races for the transparent shared
/// cache; no bandwidth regulation, no NPU groups, no controlled pages.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedBaseline;

impl SharedBaseline {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        SharedBaseline
    }
}

impl Policy for SharedBaseline {
    fn label(&self) -> &str {
        "Baseline"
    }

    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities::default()
    }

    fn select_candidate(
        &mut self,
        _now: Cycle,
        _task: u32,
        _mct: &Mct,
        _lbm_active: bool,
        _idle_pages: u32,
    ) -> Selection {
        Selection::Transparent
    }
}
