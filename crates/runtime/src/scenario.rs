//! Workload scenarios: which models run, and *when* inferences arrive.
//!
//! The engine originally supported a single closed-loop scenario (every
//! task re-issues its next inference the moment the previous one
//! retires, for a fixed round count). A [`Workload`] generalizes that
//! with an [`ArrivalProcess`] per scenario:
//!
//! * [`ArrivalProcess::Closed`] — the paper's setting: back-to-back
//!   inferences, `rounds` per task;
//! * [`ArrivalProcess::Poisson`] — open-loop traffic: each task receives
//!   inference requests as a Poisson process, modelling independent user
//!   streams hitting a shared SoC;
//! * [`ArrivalProcess::Bursty`] — clustered arrivals: periodic bursts of
//!   back-to-back requests separated by idle gaps, the worst case for
//!   cache contention.
//! * [`ArrivalProcess::Trace`] — explicit per-task request schedules
//!   ([`Workload::traced`]): the arrival cycles are supplied verbatim,
//!   which is how the trace-replay layer (`camdn-trace`) feeds recorded
//!   or generated production traces through the engine.
//!
//! Arrival schedules are drawn from the engine's seeded [`SimRng`], so a
//! given `(workload, seed)` pair is exactly reproducible (trace
//! schedules bypass the RNG entirely — they *are* the schedule).
//!
//! Latency semantics differ by loop type: closed-loop rounds have no
//! arrival, so latency is measured from dispatch (as in the paper's
//! experiments); open-loop latency is *response time*, measured from
//! the request's arrival, so queueing behind busy NPUs or earlier
//! requests of the same task is charged.

use camdn_common::types::{ms_to_cycles, Cycle};
use camdn_common::SimRng;
use camdn_models::Model;
use serde::{Deserialize, Serialize};

/// When inference requests arrive at each task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Closed loop: each task runs `rounds` inferences back to back
    /// (after a small random dispatch jitter on the first).
    Closed {
        /// Inferences per task.
        rounds: u32,
    },
    /// Open loop: arrivals form a Poisson process of `rate_per_ms`
    /// requests per millisecond per task over `horizon_ms` of simulated
    /// time. A task whose inference is still running when the next
    /// request lands starts it immediately after (queueing).
    Poisson {
        /// Mean arrivals per millisecond for each task.
        rate_per_ms: f64,
        /// Length of the arrival window in milliseconds.
        horizon_ms: f64,
    },
    /// Clustered open loop: `bursts` bursts of `burst_len` back-to-back
    /// requests, with consecutive bursts `gap_ms` apart.
    Bursty {
        /// Number of bursts per task.
        bursts: u32,
        /// Requests per burst.
        burst_len: u32,
        /// Start-to-start spacing of bursts in milliseconds.
        gap_ms: f64,
    },
    /// Explicit open loop: every task's arrival cycles are supplied
    /// verbatim via [`Workload::traced`]. The schedules live on the
    /// [`Workload`] (this variant stays `Copy`); latency is response
    /// time, as for the other open-loop processes.
    Trace,
}

/// A simulation scenario: the co-located models plus their arrival
/// process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    models: Vec<Model>,
    arrival: ArrivalProcess,
    /// Explicit per-task arrival schedules ([`ArrivalProcess::Trace`]
    /// only; empty otherwise).
    schedules: Vec<Vec<Cycle>>,
}

impl Workload {
    /// Closed-loop workload (the paper's setting): `rounds` inferences
    /// per task, back to back.
    pub fn closed(models: Vec<Model>, rounds: u32) -> Self {
        Workload {
            models,
            arrival: ArrivalProcess::Closed { rounds },
            schedules: Vec::new(),
        }
    }

    /// Open-loop Poisson workload: `rate_per_ms` requests per
    /// millisecond per task, over a window of `horizon_ms`.
    pub fn poisson(models: Vec<Model>, rate_per_ms: f64, horizon_ms: f64) -> Self {
        Workload {
            models,
            arrival: ArrivalProcess::Poisson {
                rate_per_ms,
                horizon_ms,
            },
            schedules: Vec::new(),
        }
    }

    /// Bursty workload: `bursts` bursts of `burst_len` requests, bursts
    /// spaced `gap_ms` apart.
    pub fn bursty(models: Vec<Model>, bursts: u32, burst_len: u32, gap_ms: f64) -> Self {
        Workload {
            models,
            arrival: ArrivalProcess::Bursty {
                bursts,
                burst_len,
                gap_ms,
            },
            schedules: Vec::new(),
        }
    }

    /// Explicit-schedule workload: task `i` receives one request at
    /// every cycle of `schedules[i]` (absolute cycles, non-decreasing).
    /// This is the arrival path trace replay uses: the schedule comes
    /// from a recorded or generated trace rather than a stochastic
    /// process, so replaying the same trace is bit-for-bit
    /// reproducible. A task with an empty schedule completes without
    /// running (like an open-loop task that drew no arrivals).
    pub fn traced(models: Vec<Model>, schedules: Vec<Vec<Cycle>>) -> Self {
        Workload {
            models,
            arrival: ArrivalProcess::Trace,
            schedules,
        }
    }

    /// The co-located models, one task per entry.
    pub fn models(&self) -> &[Model] {
        &self.models
    }

    /// The scenario's arrival process.
    pub fn arrival(&self) -> ArrivalProcess {
        self.arrival
    }

    /// Validates the scenario parameters.
    pub(crate) fn validate(&self) -> Result<(), crate::EngineError> {
        use crate::EngineError::InvalidConfig;
        if self.models.is_empty() {
            return Err(crate::EngineError::EmptyWorkload);
        }
        if let Some(m) = self.models.iter().find(|m| m.layers.is_empty()) {
            return Err(InvalidConfig(format!(
                "model '{}' has no layers to execute",
                m.name
            )));
        }
        match self.arrival {
            ArrivalProcess::Closed { rounds: 0 } => {
                Err(InvalidConfig("closed-loop rounds must be positive".into()))
            }
            ArrivalProcess::Closed { .. } => Ok(()),
            ArrivalProcess::Poisson {
                rate_per_ms,
                horizon_ms,
            } => {
                let ok = rate_per_ms.is_finite()
                    && rate_per_ms > 0.0
                    && horizon_ms.is_finite()
                    && horizon_ms > 0.0;
                if ok {
                    Ok(())
                } else {
                    Err(InvalidConfig(
                        "poisson rate and horizon must be positive and finite".into(),
                    ))
                }
            }
            ArrivalProcess::Bursty {
                bursts,
                burst_len,
                gap_ms,
            } => {
                if bursts == 0 || burst_len == 0 {
                    return Err(InvalidConfig(
                        "bursty workload needs at least one burst of one request".into(),
                    ));
                }
                if gap_ms.is_finite() && gap_ms >= 0.0 {
                    Ok(())
                } else {
                    Err(InvalidConfig(
                        "burst gap must be non-negative and finite".into(),
                    ))
                }
            }
            ArrivalProcess::Trace => {
                if self.schedules.len() != self.models.len() {
                    return Err(InvalidConfig(format!(
                        "traced workload has {} schedules for {} models \
                         (one per task required)",
                        self.schedules.len(),
                        self.models.len()
                    )));
                }
                for (i, sched) in self.schedules.iter().enumerate() {
                    if sched.windows(2).any(|w| w[0] > w[1]) {
                        return Err(InvalidConfig(format!(
                            "traced schedule of task {i} is not sorted \
                             (arrival cycles must be non-decreasing)"
                        )));
                    }
                }
                if self.schedules.iter().all(|s| s.is_empty()) {
                    return Err(InvalidConfig(
                        "traced workload has no arrivals in any schedule".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Draws the absolute arrival cycles for task `task_idx`.
    ///
    /// Closed-loop tasks get a single dispatch-jitter arrival (their
    /// remaining rounds re-issue immediately); open-loop tasks get the
    /// full request schedule; traced tasks return their explicit
    /// schedule verbatim. The caller iterates tasks in id order so the
    /// RNG stream — and therefore the run — is deterministic.
    pub(crate) fn draw_arrivals(&self, task_idx: usize, rng: &mut SimRng) -> Vec<Cycle> {
        match self.arrival {
            ArrivalProcess::Closed { .. } => vec![rng.next_below(50_000)],
            ArrivalProcess::Trace => self.schedules[task_idx].clone(),
            ArrivalProcess::Poisson {
                rate_per_ms,
                horizon_ms,
            } => {
                let mut t_ms = 0.0;
                let mut arrivals = Vec::new();
                loop {
                    // Exponential inter-arrival via inversion sampling.
                    let u = rng.next_f64();
                    t_ms += -(1.0 - u).ln() / rate_per_ms;
                    if t_ms >= horizon_ms {
                        break;
                    }
                    arrivals.push(ms_to_cycles(t_ms));
                }
                arrivals
            }
            ArrivalProcess::Bursty {
                bursts,
                burst_len,
                gap_ms,
            } => {
                // Per-task phase jitter keeps bursts from locking step.
                let phase = rng.next_below(50_000);
                let mut arrivals = Vec::with_capacity((bursts * burst_len) as usize);
                for b in 0..bursts {
                    let at = phase + ms_to_cycles(gap_ms * f64::from(b));
                    for _ in 0..burst_len {
                        arrivals.push(at);
                    }
                }
                arrivals
            }
        }
    }

    /// Total inference rounds a task will run, when bounded up front
    /// (`None` for Poisson, where the count is drawn per task).
    pub(crate) fn rounds_hint(&self) -> Option<u32> {
        match self.arrival {
            ArrivalProcess::Closed { rounds } => Some(rounds),
            ArrivalProcess::Poisson { .. } | ArrivalProcess::Trace => None,
            ArrivalProcess::Bursty {
                bursts, burst_len, ..
            } => Some(bursts * burst_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    #[test]
    fn closed_draws_one_jitter_arrival() {
        let w = Workload::closed(vec![zoo::mobilenet_v2()], 3);
        let mut rng = SimRng::new(1);
        let a = w.draw_arrivals(0, &mut rng);
        assert_eq!(a.len(), 1);
        assert!(a[0] < 50_000);
        assert_eq!(w.rounds_hint(), Some(3));
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_bounded() {
        let w = Workload::poisson(vec![zoo::mobilenet_v2()], 0.5, 100.0);
        let mut rng = SimRng::new(7);
        let a = w.draw_arrivals(0, &mut rng);
        assert!(!a.is_empty(), "50 expected arrivals, drew none");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(*a.last().unwrap() < ms_to_cycles(100.0));
        // Mean count should be near rate * horizon = 50.
        assert!(a.len() > 20 && a.len() < 100, "got {}", a.len());
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let w = Workload::poisson(vec![zoo::mobilenet_v2()], 1.0, 50.0);
        let a = w.draw_arrivals(0, &mut SimRng::new(9));
        let b = w.draw_arrivals(0, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn bursty_schedule_shape() {
        let w = Workload::bursty(vec![zoo::mobilenet_v2()], 3, 4, 10.0);
        let mut rng = SimRng::new(3);
        let a = w.draw_arrivals(0, &mut rng);
        assert_eq!(a.len(), 12);
        assert_eq!(w.rounds_hint(), Some(12));
        // Bursts are gap-separated: arrivals 0..4 equal, 4..8 equal, ...
        assert_eq!(a[0], a[3]);
        assert!(a[4] >= a[3] + ms_to_cycles(10.0));
    }

    #[test]
    fn validation_rejects_layerless_models() {
        let mut m = zoo::mobilenet_v2();
        m.layers.clear();
        let err = Workload::closed(vec![m], 1).validate().err().unwrap();
        assert!(
            err.to_string().contains("no layers"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Workload::closed(vec![], 2).validate().is_err());
        assert!(Workload::closed(vec![zoo::gnmt()], 0).validate().is_err());
        assert!(Workload::poisson(vec![zoo::gnmt()], 0.0, 10.0)
            .validate()
            .is_err());
        assert!(Workload::bursty(vec![zoo::gnmt()], 0, 1, 1.0)
            .validate()
            .is_err());
        assert!(Workload::closed(vec![zoo::gnmt()], 2).validate().is_ok());
    }

    #[test]
    fn traced_schedules_are_returned_verbatim_per_task() {
        let models = vec![zoo::mobilenet_v2(), zoo::resnet50()];
        let scheds = vec![vec![100, 200, 200, 900], vec![50]];
        let w = Workload::traced(models, scheds.clone());
        assert!(w.validate().is_ok());
        assert_eq!(w.rounds_hint(), None, "per-task counts vary");
        let mut rng = SimRng::new(1);
        assert_eq!(w.draw_arrivals(0, &mut rng), scheds[0]);
        assert_eq!(w.draw_arrivals(1, &mut rng), scheds[1]);
        // The RNG stream is untouched: a fresh RNG draws the same.
        assert_eq!(w.draw_arrivals(0, &mut SimRng::new(99)), scheds[0]);
    }

    #[test]
    fn traced_validation_rejects_mismatch_and_disorder() {
        let models = vec![zoo::mobilenet_v2(), zoo::resnet50()];
        // Schedule count must match the task count.
        let err = Workload::traced(models.clone(), vec![vec![1]])
            .validate()
            .err()
            .unwrap();
        assert!(err.to_string().contains("schedules"), "{err}");
        // Arrival cycles must be non-decreasing.
        let err = Workload::traced(models.clone(), vec![vec![5, 3], vec![1]])
            .validate()
            .err()
            .unwrap();
        assert!(err.to_string().contains("not sorted"), "{err}");
        // At least one task must receive a request.
        let err = Workload::traced(models.clone(), vec![vec![], vec![]])
            .validate()
            .err()
            .unwrap();
        assert!(err.to_string().contains("no arrivals"), "{err}");
        // An individual empty schedule is fine (task retires unstarted).
        assert!(Workload::traced(models, vec![vec![], vec![7]])
            .validate()
            .is_ok());
    }
}
