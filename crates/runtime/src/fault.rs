//! Deterministic fault injection: seeded, validated schedules of
//! mid-run hardware degradation.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultEvent`]s the engine
//! applies at exact simulated cycles: NPU cores dropping out and
//! returning ([`FaultKind::NpuDown`]/[`FaultKind::NpuUp`]), DRAM
//! channels browning out ([`FaultKind::DramChannelDown`]) or degrading
//! to a fractional bandwidth ([`FaultKind::DramDegrade`]), and
//! DVFS-style clock throttling ([`FaultKind::ClockThrottle`]). Plans
//! are either written by hand ([`FaultPlan::new`]) or drawn from seeded
//! exponential MTBF/MTTR processes ([`FaultPlan::generate`]), so a
//! chaos study is as reproducible as any other run: same seed, same
//! faults, same result.
//!
//! The whole layer is opt-in — an engine without a plan simulates
//! exactly as before, bit for bit.
//!
//! ```
//! use camdn_runtime::{FaultEvent, FaultKind, FaultPlan};
//!
//! // NPU 0 dies 1 ms in and comes back 2 ms later.
//! let plan = FaultPlan::new(vec![
//!     FaultEvent { at: 1_000_000, kind: FaultKind::NpuDown(0) },
//!     FaultEvent { at: 3_000_000, kind: FaultKind::NpuUp(0) },
//! ])
//! .expect("events are time-ordered and well-formed");
//! assert_eq!(plan.events().len(), 2);
//! ```

use crate::error::EngineError;
use camdn_common::rng::SimRng;
use camdn_common::types::Cycle;
use std::collections::BTreeMap;

/// Bandwidth scale a browned-out DRAM channel is re-priced at.
///
/// Channel *removal* would change the address interleaving (and with it
/// every line's placement), so a down channel is modelled as a severe
/// brownout: it still serves its interleaved share of traffic, at this
/// fraction of nominal bandwidth.
pub const CHANNEL_DOWN_SCALE: f64 = 0.05;

/// Retry budget for an inference killed by an NPU failure: after this
/// many kills the inference is dropped (counted in
/// [`RunSummary::dropped_inferences`](crate::RunSummary::dropped_inferences)).
pub const MAX_INFERENCE_RETRIES: u32 = 3;

/// Base of the exponential back-off (in simulated cycles) before a
/// killed inference re-enters the NPU queue: the k-th retry waits
/// `RETRY_BACKOFF_CYCLES << (k - 1)`.
pub const RETRY_BACKOFF_CYCLES: Cycle = 50_000;

/// One kind of hardware degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// NPU core goes down: in-flight work on it is killed and
    /// re-queued, and the core leaves the free pool.
    NpuDown(u32),
    /// NPU core returns to the free pool.
    NpuUp(u32),
    /// DRAM channel browns out to [`CHANNEL_DOWN_SCALE`] of nominal
    /// bandwidth.
    DramChannelDown(u32),
    /// DRAM channel returns to nominal bandwidth.
    DramChannelUp(u32),
    /// DRAM channel degrades to `factor` of nominal bandwidth
    /// (`0 < factor <= 1`; `1.0` restores it).
    DramDegrade {
        /// Channel index.
        channel: u32,
        /// Bandwidth scale in `(0, 1]`.
        factor: f64,
    },
    /// Global NPU clock scales to `factor` of nominal frequency
    /// (`0 < factor <= 1`; `1.0` restores it). Compute phases stretch
    /// by `1 / factor`; memory timing is untouched.
    ClockThrottle {
        /// Clock scale in `(0, 1]`.
        factor: f64,
    },
}

/// One scheduled fault, applied when simulated time reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated cycle the fault fires at.
    pub at: Cycle,
    /// What degrades (or recovers).
    pub kind: FaultKind,
}

/// A validated, time-ordered schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from explicit events, validating that timestamps
    /// are non-decreasing and every scale factor is finite and in
    /// `(0, 1]`. Resource indices are checked against the SoC when the
    /// simulation is built, not here.
    pub fn new(events: Vec<FaultEvent>) -> Result<Self, EngineError> {
        let mut last = 0;
        for (i, e) in events.iter().enumerate() {
            if e.at < last {
                return Err(EngineError::InvalidConfig(format!(
                    "fault plan is not time-ordered: event {i} at cycle {} follows cycle {last}",
                    e.at
                )));
            }
            last = e.at;
            let factor = match e.kind {
                FaultKind::DramDegrade { factor, .. } => Some(factor),
                FaultKind::ClockThrottle { factor } => Some(factor),
                _ => None,
            };
            if let Some(f) = factor {
                if !f.is_finite() || f <= 0.0 || f > 1.0 {
                    return Err(EngineError::InvalidConfig(format!(
                        "fault plan event {i}: scale factor {f} is outside (0, 1]"
                    )));
                }
            }
        }
        Ok(FaultPlan { events })
    }

    /// Draws a plan from seeded exponential MTBF/MTTR processes: each
    /// resource class alternates up-time (mean `*_mtbf_cycles`) and
    /// repair time (mean `*_mttr_cycles`) independently per resource,
    /// clipped to `cfg.horizon`. A class with MTBF `0.0` is disabled.
    /// The same configuration always yields the same plan.
    pub fn generate(cfg: &FaultGenConfig) -> Result<Self, EngineError> {
        let mut rng = SimRng::new(cfg.seed);
        let mut events = Vec::new();
        if cfg.npu_mtbf_cycles > 0.0 {
            for core in 0..cfg.npu_cores {
                push_alternating(
                    &mut rng,
                    &mut events,
                    cfg.horizon,
                    cfg.npu_mtbf_cycles,
                    cfg.npu_mttr_cycles,
                    FaultKind::NpuDown(core),
                    FaultKind::NpuUp(core),
                );
            }
        }
        if cfg.dram_mtbf_cycles > 0.0 {
            for channel in 0..cfg.dram_channels {
                push_alternating(
                    &mut rng,
                    &mut events,
                    cfg.horizon,
                    cfg.dram_mtbf_cycles,
                    cfg.dram_mttr_cycles,
                    FaultKind::DramDegrade {
                        channel,
                        factor: cfg.dram_degrade_factor,
                    },
                    FaultKind::DramChannelUp(channel),
                );
            }
        }
        if cfg.throttle_mtbf_cycles > 0.0 {
            push_alternating(
                &mut rng,
                &mut events,
                cfg.horizon,
                cfg.throttle_mtbf_cycles,
                cfg.throttle_mttr_cycles,
                FaultKind::ClockThrottle {
                    factor: cfg.throttle_factor,
                },
                FaultKind::ClockThrottle { factor: 1.0 },
            );
        }
        events.sort_by_key(|e| e.at);
        Self::new(events)
    }

    /// The schedule, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every resource index against an SoC's core and channel
    /// counts (called by
    /// [`SimulationBuilder::build`](crate::SimulationBuilder::build)).
    pub fn validate_for(&self, npu_cores: u32, dram_channels: u32) -> Result<(), EngineError> {
        for (i, e) in self.events.iter().enumerate() {
            let (idx, bound, what) = match e.kind {
                FaultKind::NpuDown(n) | FaultKind::NpuUp(n) => (n, npu_cores, "NPU core"),
                FaultKind::DramChannelDown(c)
                | FaultKind::DramChannelUp(c)
                | FaultKind::DramDegrade { channel: c, .. } => (c, dram_channels, "DRAM channel"),
                FaultKind::ClockThrottle { .. } => continue,
            };
            if idx >= bound {
                return Err(EngineError::InvalidConfig(format!(
                    "fault plan event {i}: {what} {idx} is out of range (SoC has {bound})"
                )));
            }
        }
        Ok(())
    }

    /// Order-independent fingerprint of the schedule, for resume-log
    /// headers: two runs agree on their faults iff the fingerprints
    /// match (up to hash collision).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical encoding of every event.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for e in &self.events {
            mix(e.at);
            match e.kind {
                FaultKind::NpuDown(n) => {
                    mix(1);
                    mix(u64::from(n));
                }
                FaultKind::NpuUp(n) => {
                    mix(2);
                    mix(u64::from(n));
                }
                FaultKind::DramChannelDown(c) => {
                    mix(3);
                    mix(u64::from(c));
                }
                FaultKind::DramChannelUp(c) => {
                    mix(4);
                    mix(u64::from(c));
                }
                FaultKind::DramDegrade { channel, factor } => {
                    mix(5);
                    mix(u64::from(channel));
                    mix(factor.to_bits());
                }
                FaultKind::ClockThrottle { factor } => {
                    mix(6);
                    mix(factor.to_bits());
                }
            }
        }
        h
    }

    /// The sub-plan covering `[start, end)`, rebased to cycle 0 —
    /// what a windowed replay hands each window's engine run. Faults
    /// *active* at `start` (an NPU still down, a channel still
    /// degraded, a throttled clock) are materialized as events at
    /// cycle 0, so a window that begins mid-outage starts degraded.
    pub fn slice(&self, start: Cycle, end: Cycle) -> FaultPlan {
        let mut npus: BTreeMap<u32, bool> = BTreeMap::new(); // true = down
        let mut channels: BTreeMap<u32, f64> = BTreeMap::new();
        let mut clock = 1.0f64;
        let mut events = Vec::new();
        for e in &self.events {
            if e.at >= end {
                break;
            }
            if e.at < start {
                match e.kind {
                    FaultKind::NpuDown(n) => {
                        npus.insert(n, true);
                    }
                    FaultKind::NpuUp(n) => {
                        npus.insert(n, false);
                    }
                    FaultKind::DramChannelDown(c) => {
                        channels.insert(c, CHANNEL_DOWN_SCALE);
                    }
                    FaultKind::DramChannelUp(c) => {
                        channels.insert(c, 1.0);
                    }
                    FaultKind::DramDegrade { channel, factor } => {
                        channels.insert(channel, factor);
                    }
                    FaultKind::ClockThrottle { factor } => clock = factor,
                }
            } else {
                events.push(FaultEvent {
                    at: e.at - start,
                    kind: e.kind,
                });
            }
        }
        let mut boundary = Vec::new();
        for (&n, &down) in &npus {
            if down {
                boundary.push(FaultEvent {
                    at: 0,
                    kind: FaultKind::NpuDown(n),
                });
            }
        }
        for (&c, &factor) in &channels {
            if factor != 1.0 {
                boundary.push(FaultEvent {
                    at: 0,
                    kind: FaultKind::DramDegrade { channel: c, factor },
                });
            }
        }
        if clock != 1.0 {
            boundary.push(FaultEvent {
                at: 0,
                kind: FaultKind::ClockThrottle { factor: clock },
            });
        }
        boundary.extend(events);
        FaultPlan { events: boundary }
    }
}

/// Pushes alternating down/up events for one resource until `horizon`.
fn push_alternating(
    rng: &mut SimRng,
    events: &mut Vec<FaultEvent>,
    horizon: Cycle,
    mtbf: f64,
    mttr: f64,
    down: FaultKind,
    up: FaultKind,
) {
    let mut t = exp_draw(rng, mtbf);
    while t < horizon {
        events.push(FaultEvent { at: t, kind: down });
        let repaired = t + exp_draw(rng, mttr);
        if repaired >= horizon {
            return;
        }
        events.push(FaultEvent {
            at: repaired,
            kind: up,
        });
        t = repaired + exp_draw(rng, mtbf);
    }
}

/// One exponential draw with the given mean, in whole cycles (>= 1).
fn exp_draw(rng: &mut SimRng, mean: f64) -> Cycle {
    let u = rng.next_f64();
    (-(1.0 - u).ln() * mean).ceil().max(1.0) as Cycle
}

/// Configuration of [`FaultPlan::generate`]: per-class mean time
/// between failures / to repair, in simulated cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultGenConfig {
    /// Seed of the fault process (independent of the engine seed).
    pub seed: u64,
    /// Cycle the fault processes stop at (typically the expected run
    /// length).
    pub horizon: Cycle,
    /// NPU cores the failure processes cover (match the SoC).
    pub npu_cores: u32,
    /// DRAM channels the brownout processes cover (match the SoC).
    pub dram_channels: u32,
    /// Mean cycles between failures per NPU core (`0.0` disables).
    pub npu_mtbf_cycles: f64,
    /// Mean repair cycles per NPU failure.
    pub npu_mttr_cycles: f64,
    /// Mean cycles between brownouts per DRAM channel (`0.0` disables).
    pub dram_mtbf_cycles: f64,
    /// Mean brownout duration in cycles.
    pub dram_mttr_cycles: f64,
    /// Bandwidth scale while a channel is browned out.
    pub dram_degrade_factor: f64,
    /// Mean cycles between thermal-throttle episodes (`0.0` disables).
    pub throttle_mtbf_cycles: f64,
    /// Mean throttle-episode duration in cycles.
    pub throttle_mttr_cycles: f64,
    /// Clock scale during a throttle episode.
    pub throttle_factor: f64,
}

impl Default for FaultGenConfig {
    /// Table II resource counts, all classes enabled at moderate rates
    /// over a 100 ms horizon.
    fn default() -> Self {
        FaultGenConfig {
            seed: 0xFA017,
            horizon: 100_000_000,
            npu_cores: 16,
            dram_channels: 4,
            npu_mtbf_cycles: 50_000_000.0,
            npu_mttr_cycles: 5_000_000.0,
            dram_mtbf_cycles: 50_000_000.0,
            dram_mttr_cycles: 5_000_000.0,
            dram_degrade_factor: 0.25,
            throttle_mtbf_cycles: 50_000_000.0,
            throttle_mttr_cycles: 5_000_000.0,
            throttle_factor: 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_events_are_rejected() {
        let err = FaultPlan::new(vec![
            FaultEvent {
                at: 10,
                kind: FaultKind::NpuDown(0),
            },
            FaultEvent {
                at: 5,
                kind: FaultKind::NpuUp(0),
            },
        ])
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn bad_factors_are_rejected() {
        for factor in [0.0, -1.0, 1.5, f64::NAN, f64::INFINITY] {
            let err = FaultPlan::new(vec![FaultEvent {
                at: 0,
                kind: FaultKind::ClockThrottle { factor },
            }])
            .unwrap_err();
            assert!(matches!(err, EngineError::InvalidConfig(_)), "{factor}");
        }
        // 1.0 (restore) and small positive factors are fine.
        for factor in [1.0, 0.05] {
            FaultPlan::new(vec![FaultEvent {
                at: 0,
                kind: FaultKind::DramDegrade { channel: 0, factor },
            }])
            .unwrap();
        }
    }

    #[test]
    fn validate_for_checks_resource_ranges() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 0,
            kind: FaultKind::NpuDown(4),
        }])
        .unwrap();
        plan.validate_for(8, 8).unwrap();
        assert!(plan.validate_for(4, 8).is_err());
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 0,
            kind: FaultKind::DramChannelDown(7),
        }])
        .unwrap();
        plan.validate_for(8, 8).unwrap();
        assert!(plan.validate_for(8, 4).is_err());
    }

    #[test]
    fn generate_is_deterministic_and_ordered() {
        let cfg = FaultGenConfig::default();
        let a = FaultPlan::generate(&cfg).unwrap();
        let b = FaultPlan::generate(&cfg).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "default rates over 100 ms produce faults");
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events().iter().all(|e| e.at < cfg.horizon));
        let c = FaultPlan::generate(&FaultGenConfig {
            seed: cfg.seed + 1,
            ..cfg
        })
        .unwrap();
        assert_ne!(a, c, "a different seed draws a different schedule");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn slice_rebases_and_materializes_active_faults() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 100,
                kind: FaultKind::NpuDown(2),
            },
            FaultEvent {
                at: 150,
                kind: FaultKind::ClockThrottle { factor: 0.5 },
            },
            FaultEvent {
                at: 300,
                kind: FaultKind::NpuUp(2),
            },
            FaultEvent {
                at: 450,
                kind: FaultKind::DramDegrade {
                    channel: 1,
                    factor: 0.25,
                },
            },
        ])
        .unwrap();
        // Window [200, 400): NPU 2 and the throttle are active at entry,
        // the NpuUp at 300 rebases to 100, the degrade at 450 is out.
        let w = plan.slice(200, 400);
        assert_eq!(
            w.events(),
            &[
                FaultEvent {
                    at: 0,
                    kind: FaultKind::NpuDown(2)
                },
                FaultEvent {
                    at: 0,
                    kind: FaultKind::ClockThrottle { factor: 0.5 }
                },
                FaultEvent {
                    at: 100,
                    kind: FaultKind::NpuUp(2)
                },
            ]
        );
        // A window after recovery sees nothing from the NPU outage —
        // but the never-restored throttle is still active at entry.
        let w = plan.slice(400, 500);
        assert_eq!(
            w.events(),
            &[
                FaultEvent {
                    at: 0,
                    kind: FaultKind::ClockThrottle { factor: 0.5 }
                },
                FaultEvent {
                    at: 50,
                    kind: FaultKind::DramDegrade {
                        channel: 1,
                        factor: 0.25
                    }
                },
            ]
        );
        // Fault-free prefix slices to an empty plan.
        assert!(plan.slice(0, 100).is_empty());
    }
}
