//! Seeded self-test: runs the full engine over the fixture workspace
//! in `tests/fixtures/miniws`, where every lint has one injected
//! violation and one suppressed instance, and the `bad-directive`
//! machinery has one malformed and one stale directive. The expected
//! finding set is asserted exactly, so a lint that stops firing, a
//! suppression that stops holding, or a scope that silently widens
//! (bins, test regions, non-result-affecting crates) all fail here.

use std::path::{Path, PathBuf};

use camdn_lint::{run, Lint, LintConfig};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

#[test]
fn every_lint_fires_and_every_suppression_holds() {
    let report = run(&LintConfig::new(fixture_root())).unwrap();

    // 5 fixture sources + the two registry docs.
    assert_eq!(report.files_scanned, 7);

    let mut got: Vec<(String, u32, &str, bool)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.lint.name(), f.suppressed))
        .collect();
    got.sort();

    let mut want: Vec<(String, u32, &str, bool)> = [
        // Docs-side registry drift: documented but gone from source.
        ("README.md", 7, "env-registry", false),
        ("README.md", 10, "env-registry", true),
        ("docs/SCHEMAS.md", 5, "schema-registry", false),
        ("docs/SCHEMAS.md", 8, "schema-registry", true),
        // Legacy crate: both missing attrs excused by one line-1
        // directive, plus the malformed and stale directives.
        ("crates/legacy/src/lib.rs", 1, "crate-hygiene", true),
        ("crates/legacy/src/lib.rs", 1, "crate-hygiene", true),
        ("crates/legacy/src/lib.rs", 5, "bad-directive", false),
        ("crates/legacy/src/lib.rs", 8, "bad-directive", false),
        // Runtime crate: one firing and one suppressed instance per
        // lint, plus the missing `deny(deprecated)` attribute.
        ("crates/runtime/src/lib.rs", 1, "crate-hygiene", false),
        ("crates/runtime/src/lib.rs", 7, "nondet-iter", false),
        ("crates/runtime/src/lib.rs", 9, "nondet-iter", true),
        ("crates/runtime/src/lib.rs", 12, "wall-clock-in-sim", false),
        ("crates/runtime/src/lib.rs", 14, "wall-clock-in-sim", true),
        ("crates/runtime/src/lib.rs", 18, "panic-in-lib", false),
        ("crates/runtime/src/lib.rs", 20, "panic-in-lib", true),
        ("crates/runtime/src/lib.rs", 25, "schema-registry", false),
        ("crates/runtime/src/lib.rs", 27, "schema-registry", true),
        ("crates/runtime/src/lib.rs", 29, "env-registry", false),
        ("crates/runtime/src/lib.rs", 31, "env-registry", true),
        // Scheduler-component module: the crate-level `runtime` scope
        // covers `sched.rs` with no lint-config change — a `HashMap`
        // inside a component fires, and its tick path's panics fire.
        ("crates/runtime/src/sched.rs", 8, "nondet-iter", false),
        ("crates/runtime/src/sched.rs", 10, "nondet-iter", true),
        ("crates/runtime/src/sched.rs", 15, "panic-in-lib", false),
        ("crates/runtime/src/sched.rs", 17, "panic-in-lib", true),
    ]
    .into_iter()
    .map(|(f, l, n, s)| (f.to_string(), l, n, s))
    .collect();
    want.sort();

    assert_eq!(got, want);
}

#[test]
fn per_lint_counts_and_reasons() {
    let report = run(&LintConfig::new(fixture_root())).unwrap();

    for lint in Lint::ALL {
        let (live, quiet) = report.counts(lint);
        if lint == Lint::BadDirective {
            // Directives are meta: they can be wrong but never excused.
            assert_eq!((live, quiet), (2, 0));
        } else {
            assert!(live >= 1, "{lint} never fired on its injected violation");
            assert!(quiet >= 1, "{lint} suppression was not honored");
        }
    }

    for f in &report.findings {
        if f.suppressed {
            let reason = f.reason.as_deref().unwrap_or("");
            assert!(
                !reason.is_empty(),
                "suppressed finding lost its reason: {f:?}"
            );
        } else {
            assert!(f.reason.is_none());
        }
    }

    assert_eq!(report.unsuppressed().count(), 12);
}

/// Scope proofs: files that contain lintable constructs but sit
/// outside a lint's jurisdiction must stay silent.
#[test]
fn out_of_scope_constructs_stay_silent() {
    let report = run(&LintConfig::new(fixture_root())).unwrap();

    // The bin uses `.unwrap()`/`.expect()`: bins own their exit.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file.ends_with("bin/tool.rs")));

    // The clean crate uses `HashMap` but is not result-affecting.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file.contains("crates/clean/")));

    // The `#[cfg(test)]` module in the runtime fixture holds a panic,
    // a HashMap, a wall-clock read, and rogue identifiers — none may
    // surface (every runtime finding sits above the test module).
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file.ends_with("runtime/src/lib.rs"))
        .all(|f| f.line < 35));

    // Same exemption inside the scheduler-component fixture: its test
    // module's HashMap and panic stay silent.
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file.ends_with("runtime/src/sched.rs"))
        .all(|f| f.line < 22));
}
