//! Clean fixture crate: constructs that are out of every lint's scope
//! and must produce zero findings.
#![warn(missing_docs)]
#![deny(deprecated)]

use std::collections::HashMap;

/// `HashMap` is fine here: `clean` is not a result-affecting crate.
pub fn scope_proof() -> HashMap<u32, u32> {
    HashMap::new()
}
