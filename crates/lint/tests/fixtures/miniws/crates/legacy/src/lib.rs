// camdn-lint: allow(crate-hygiene, reason = "grandfathered pre-lint crate; cleanup tracked separately")
//! Legacy fixture crate: no inner attributes at all, excused by the
//! directive on line one. Also hosts the two bad-directive cases.

// camdn-lint: allow(not-a-lint, reason = "malformed on purpose: unknown lint name")
fn nothing() {}

// camdn-lint: allow(panic-in-lib, reason = "stale on purpose: the panic below was fixed")
fn fixed() -> u32 {
    7
}
