//! Bin fixture: panicking escape hatches are allowed in binaries,
//! which own their process exit.

fn main() {
    let arg = std::env::args().nth(1).unwrap();
    let n: u32 = arg.parse().expect("usage: tool <n>");
    let _ = n;
}
