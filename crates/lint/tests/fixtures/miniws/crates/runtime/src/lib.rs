//! Seeded fixture crate: every lint has one injected violation and
//! one suppressed instance. Never compiled — only lexed and linted.
//! The missing `deny(deprecated)` inner attribute is itself the
//! injected `crate-hygiene` violation.
#![warn(missing_docs)]

use std::collections::HashMap;
// camdn-lint: allow(nondet-iter, reason = "keyed memo; entries are never iterated")
use std::collections::HashSet;

fn clocks() {
    let _bad = std::time::Instant::now();
    // camdn-lint: allow(wall-clock-in-sim, reason = "wall budget guard, outside the simulated timeline")
    let _ok = std::time::SystemTime::now();
}

fn panics(x: Option<u32>) -> u32 {
    let _bad = x.unwrap();
    // camdn-lint: allow(panic-in-lib, reason = "checked is_some() on the line above")
    x.expect("present")
}

fn registries() -> (&'static str, &'static str) {
    let _documented = "camdn-mini/1";
    let _rogue = "camdn-mini-rogue/1";
    // camdn-lint: allow(schema-registry, reason = "internal probe id, not a wire format")
    let _hidden = "camdn-mini-hidden/1";
    let _env_documented = "CAMDN_MINI_DOCUMENTED";
    let _env_rogue = "CAMDN_MINI_ROGUE";
    // camdn-lint: allow(env-registry, reason = "internal test hook, intentionally undocumented")
    let _env_hidden = "CAMDN_MINI_HIDDEN";
    ("camdn-mini/1", "CAMDN_MINI_DOCUMENTED")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let _map = std::collections::HashMap::<u32, u32>::new();
        let _t = std::time::Instant::now();
        let _schema = "camdn-mini-test-only/1";
        let _env = "CAMDN_MINI_TEST_ONLY";
        panic!("tests may panic");
    }
}
