//! Fixture scheduler component: proves the `sched` module scope sits
//! inside the crate-level `runtime` jurisdiction, so `nondet-iter`
//! and `panic-in-lib` cover scheduler components from day one.
//! Never compiled — only lexed and linted.

/// Unordered state held by a scheduler component must fire.
pub struct SchedComponent {
    pending: std::collections::HashMap<u64, u64>,
    // camdn-lint: allow(nondet-iter, reason = "membership probe only; iteration order never observed")
    seen: std::collections::HashSet<u64>,
}

impl SchedComponent {
    fn tick(&mut self, now: u64) -> u64 {
        let next = self.pending.remove(&now).unwrap();
        // camdn-lint: allow(panic-in-lib, reason = "a stale tick is a driver bug, not bad input")
        if !self.seen.insert(now) { panic!("stale tick") }
        next
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_sched_exemptions_hold() {
        let _memo = std::collections::HashMap::<u64, u64>::new();
        panic!("tests may panic");
    }
}
