//! Golden-file tests for the lexer: `tests/golden/*.rs` inputs are
//! lexed and compared token-by-token against their `.tokens`
//! companions. Regenerate a companion by running the test with
//! `UPDATE_GOLDEN=1` after an intentional lexer change and reviewing
//! the diff.

use std::fmt::Write as _;
use std::path::Path;

use camdn_lint::lexer::{lex, TokKind};

fn dump(src: &str) -> String {
    let mut out = String::new();
    for t in lex(src) {
        let kind = match t.kind {
            TokKind::Ident => "ident",
            TokKind::Lifetime => "lifetime",
            TokKind::CharLit => "char",
            TokKind::NumLit => "num",
            TokKind::StrLit => "str",
            TokKind::LineComment => "line-comment",
            TokKind::BlockComment => "block-comment",
            TokKind::Punct => "punct",
        };
        let text = t.text.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(out, "{}:{} {kind} {text}", t.line, t.col);
    }
    out
}

fn check(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs"))).unwrap();
    let got = dump(&src);
    let golden_path = dir.join(format!("{name}.tokens"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap();
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "token stream diverges at line {} of {name}.tokens",
            i + 1
        );
    }
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "token count differs for {name}"
    );
}

#[test]
fn golden_tricky() {
    check("tricky");
}

/// Spot-checks on the golden stream, independent of the golden file,
/// so the invariants stay asserted even if the file is regenerated.
#[test]
fn golden_tricky_invariants() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let src = std::fs::read_to_string(dir.join("tricky.rs")).unwrap();
    let toks = lex(&src);

    // Exactly one block comment, with the nested comment inside it.
    let blocks: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::BlockComment)
        .collect();
    assert_eq!(blocks.len(), 1);
    assert!(blocks[0].text.contains("nested block comment"));
    assert!(blocks[0].text.contains("still in the outer comment"));

    // Lifetimes and chars are told apart.
    let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
    assert_eq!(
        lifetimes, 6,
        "'a, 'b, 'a in the generics plus three in params/return"
    );
    let chars: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, ["'a'", "'\\''", "'\\n'", "'\\u{1F980}'", "'b'"]);

    // Raw strings keep their hash fences and inner quotes.
    let strs: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::StrLit)
        .map(|t| t.text.as_str())
        .collect();
    assert!(strs.contains(&r##"r#"contains "quotes" freely"#"##));
    assert!(strs.contains(&r###"r##"even a "# inside"##"###));
    assert!(strs.contains(&r##"br#"raw "bytes""#"##));

    // Raw identifiers are idents, not strings.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "r#match"));

    // `Instant::now` forms the three-token window the lints scan for.
    let idx = toks
        .iter()
        .position(|t| t.text == "Instant" && t.line > 40)
        .unwrap();
    assert_eq!(toks[idx + 1].text, "::");
    assert_eq!(toks[idx + 2].text, "now");
}
