//! Golden lexer input: every construct that has historically broken
//! hand-rolled Rust lexers, in one file. Never compiled — only lexed.

fn lifetimes<'a, 'b: 'a>(x: &'a str, y: &'b str) -> &'a str {
    let c: char = 'a';
    let esc = '\'';
    let nl = '\n';
    let uni = '\u{1F980}';
    let _ = 'b';
    x
}

fn strings() {
    let plain = "with \"escaped\" quotes and a \\ backslash";
    let raw = r"no escapes \n here";
    let hashed = r#"contains "quotes" freely"#;
    let two = r##"even a "# inside"##;
    let bytes = b"\x00\xFF";
    let raw_bytes = br#"raw "bytes""#;
}

/* block comment
   /* nested block comment with code-like text: fn f() { '"' } */
   still in the outer comment */
fn after_comments() {}

fn numbers() {
    let a = 0..10;
    let b = 1.5e3_f64;
    let c = 0xFF_u8;
    let d = 0b1010;
    let t = (1, 2).0;
}

fn r#match(r#type: u32) -> u32 {
    r#type
}

mod paths {
    use std::time::Instant; // trailing line comment
    fn f() {
        let _ = Instant::now();
    }
}
