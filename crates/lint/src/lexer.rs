//! A hand-rolled, dependency-free lexer for (a practical superset of)
//! Rust source text.
//!
//! The lint engine never needs a parse tree — every invariant it
//! checks is visible in the token stream — so this lexer stays small
//! and total: it never fails, it just keeps producing tokens until the
//! input is exhausted. It does, however, get the genuinely tricky
//! parts of Rust's lexical grammar right, because a lint that
//! mis-lexes a raw string or a nested comment will hallucinate or miss
//! findings:
//!
//! * raw strings `r"…"` / `r#"…"#` (any number of hashes), raw byte
//!   strings `br#"…"#`, and C strings `c"…"` / `cr#"…"#`;
//! * nested block comments `/* /* … */ */`;
//! * the lifetime-vs-char-literal ambiguity (`'a` vs `'a'` vs `'\''`);
//! * string/char escapes (`"\""`, `'\u{1F980}'`);
//! * raw identifiers `r#match`;
//! * `::` as a single token so path patterns like `Instant::now` are a
//!   three-token window.
//!
//! Comments are kept in the stream (the suppression-directive scanner
//! reads them); every other consumer filters them out.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `'\''`, `b'\n'`).
    CharLit,
    /// A numeric literal (`42`, `0xFF_u8`, `1.5e-3`).
    NumLit,
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`),
    /// including its quotes/prefix/hashes in [`Token::text`].
    StrLit,
    /// A line comment, including doc comments (`//`, `///`, `//!`).
    LineComment,
    /// A block comment, including doc comments (`/* */`, `/** */`),
    /// with nesting handled.
    BlockComment,
    /// Punctuation. One char per token, except `::` which is fused.
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

/// Cursor over the source chars with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Like [`Cursor::bump`], for positions the caller has already
    /// peeked: total, returning NUL at end of input instead of
    /// panicking (the lint engine must never panic on any input).
    fn bump_char(&mut self) -> char {
        self.bump().unwrap_or('\0')
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream. Total: never fails; malformed
/// input (e.g. an unterminated string) yields a final token that runs
/// to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let tok = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if let Some(prefix_len) = string_prefix_len(&cur) {
            lex_string(&mut cur, prefix_len)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            // Byte char literal b'x'.
            cur.bump();
            let mut t = lex_quote(&mut cur);
            t.text.insert(0, 'b');
            t
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        out.push(Token { line, col, ..tok });
    }
    out
}

/// If the cursor sits on a string-literal prefix (`"`, `r"`, `r#"`,
/// `b"`, `br#"`, `c"`, `cr#"`, …), returns the length of the prefix up
/// to but excluding the opening quote's hashes — i.e. the number of
/// chars before the `#*"` part begins. Returns `None` for raw
/// identifiers like `r#match` and for plain identifiers.
fn string_prefix_len(cur: &Cursor) -> Option<usize> {
    let c0 = cur.peek(0)?;
    if c0 == '"' {
        return Some(0);
    }
    let raw_after = |at: usize| -> bool {
        // After an `r` at offset `at - 1`: hashes then a quote?
        let mut i = at;
        while cur.peek(i) == Some('#') {
            i += 1;
        }
        cur.peek(i) == Some('"')
    };
    match c0 {
        'r' if raw_after(1) => Some(1),
        'b' | 'c' => match cur.peek(1) {
            Some('"') => Some(1),
            Some('r') if raw_after(2) => Some(2),
            _ => None,
        },
        _ => None,
    }
}

/// Lexes any string-like literal. `prefix_len` chars of letter prefix
/// (`r`, `br`, `c`, …) come first; raw forms then carry `#` fences.
fn lex_string(cur: &mut Cursor, prefix_len: usize) -> Token {
    let mut text = String::new();
    let mut raw = false;
    for _ in 0..prefix_len {
        let c = cur.bump_char();
        raw |= c == 'r';
        text.push(c);
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push(cur.bump_char());
    }
    if let Some('"') = cur.peek(0) {
        text.push(cur.bump_char());
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' && !raw {
            // Escaped next char (e.g. `\"`) can't close the literal.
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            continue;
        }
        if c == '"' {
            if raw {
                let mut matched = 0usize;
                while matched < hashes && cur.peek(0) == Some('#') {
                    matched += 1;
                    text.push(cur.bump_char());
                }
                if matched == hashes {
                    break;
                }
            } else {
                break;
            }
        }
    }
    Token {
        kind: TokKind::StrLit,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes a `'…` form: a lifetime (`'a`, `'_`) or a char literal
/// (`'a'`, `'\n'`). The disambiguation rule: after the quote, an
/// identifier run *not* immediately followed by another quote is a
/// lifetime; everything else is a char literal.
fn lex_quote(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    text.push(cur.bump_char());
    match cur.peek(0) {
        Some(c) if is_ident_start(c) => {
            // Could be `'a` (lifetime) or `'a'` (char). Look past the
            // identifier run for a closing quote.
            let mut len = 1;
            while cur.peek(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if cur.peek(len) == Some('\'') {
                for _ in 0..=len {
                    text.push(cur.bump_char());
                }
                Token {
                    kind: TokKind::CharLit,
                    text,
                    line: 0,
                    col: 0,
                }
            } else {
                for _ in 0..len {
                    text.push(cur.bump_char());
                }
                Token {
                    kind: TokKind::Lifetime,
                    text,
                    line: 0,
                    col: 0,
                }
            }
        }
        _ => {
            // Char literal with an escape or punctuation payload:
            // consume to the closing quote, honoring `\`.
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(e) = cur.bump() {
                        text.push(e);
                    }
                    continue;
                }
                if c == '\'' {
                    break;
                }
            }
            Token {
                kind: TokKind::CharLit,
                text,
                line: 0,
                col: 0,
            }
        }
    }
}

fn lex_line_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(cur.bump_char());
    }
    Token {
        kind: TokKind::LineComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '/' && cur.peek(0) == Some('*') {
            text.push(cur.bump_char());
            depth += 1;
        } else if c == '*' && cur.peek(0) == Some('/') {
            text.push(cur.bump_char());
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
    }
    Token {
        kind: TokKind::BlockComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    text.push(cur.bump_char());
    // Raw identifier `r#match` (string prefixes were ruled out by the
    // caller, so `r#` here can only start a raw ident).
    if text == "r" && cur.peek(0) == Some('#') && cur.peek(1).is_some_and(is_ident_start) {
        text.push(cur.bump_char());
    }
    while cur.peek(0).is_some_and(is_ident_continue) {
        text.push(cur.bump_char());
    }
    Token {
        kind: TokKind::Ident,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let mut seen_dot = false;
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            // Covers digits, base prefixes (0x…), suffixes (u64), and
            // exponents (1e9). `1e-3` loses its `-` to a Punct token,
            // which is fine for linting purposes.
            text.push(cur.bump_char());
        } else if c == '.' && !seen_dot && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` continues the literal; `0..n` does not (the char
            // after the dot is another dot, not a digit).
            seen_dot = true;
            text.push(cur.bump_char());
        } else {
            break;
        }
    }
    Token {
        kind: TokKind::NumLit,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_punct(cur: &mut Cursor) -> Token {
    let c = cur.bump_char();
    let mut text = String::from(c);
    if c == ':' && cur.peek(0) == Some(':') {
        text.push(cur.bump_char());
    }
    Token {
        kind: TokKind::Punct,
        text,
        line: 0,
        col: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"a "quoted" b"#; x"####);
        assert!(toks.contains(&(TokKind::StrLit, r###"r#"a "quoted" b"#"###.into())));
        assert_eq!(toks.last().unwrap().1, "x");
    }

    #[test]
    fn raw_string_hash_fence_must_match() {
        // A lone `"#` inside an `r##"…"##` literal does not close it.
        let src = "r##\"one \"# two\"## tail";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokKind::StrLit, "r##\"one \"# two\"##".into()));
        assert_eq!(toks[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let e = '\\''; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.1 == "'a"));
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\''");
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = kinds("&'static str; &'_ T");
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'_".into())));
    }

    #[test]
    fn string_escapes_do_not_close() {
        let toks = kinds(r#"let s = "a \" b"; done"#);
        assert!(toks.contains(&(TokKind::StrLit, r#""a \" b""#.into())));
        assert!(toks.contains(&(TokKind::Ident, "done".into())));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" br#"raw bytes"# c"cstr" b'\n'"##);
        assert_eq!(toks[0], (TokKind::StrLit, r#"b"bytes""#.into()));
        assert_eq!(toks[1], (TokKind::StrLit, r##"br#"raw bytes"#"##.into()));
        assert_eq!(toks[2], (TokKind::StrLit, r#"c"cstr""#.into()));
        assert_eq!(toks[3], (TokKind::CharLit, "b'\\n'".into()));
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let toks = kinds("let r#match = r#move; r#\"raw\"#");
        assert!(toks.contains(&(TokKind::Ident, "r#match".into())));
        assert!(toks.contains(&(TokKind::Ident, "r#move".into())));
        assert!(toks.contains(&(TokKind::StrLit, "r#\"raw\"#".into())));
    }

    #[test]
    fn path_sep_is_one_token() {
        let toks = kinds("std::time::Instant::now()");
        let seps = toks.iter().filter(|t| t.1 == "::").count();
        assert_eq!(seps, 3);
        // And a lone `:` stays single.
        let toks = kinds("let x: u8 = 0;");
        assert!(toks.contains(&(TokKind::Punct, ":".into())));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e3; let h = 0xFF_u8; }");
        assert!(toks.contains(&(TokKind::NumLit, "0".into())));
        assert!(toks.contains(&(TokKind::NumLit, "10".into())));
        assert!(toks.contains(&(TokKind::NumLit, "1.5e3".into())));
        assert!(toks.contains(&(TokKind::NumLit, "0xFF_u8".into())));
    }

    #[test]
    fn positions_are_one_based_and_track_lines() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_total() {
        let toks = kinds("let s = \"never closed");
        assert_eq!(toks.last().unwrap().0, TokKind::StrLit);
    }

    #[test]
    fn line_comments_kept() {
        let toks = kinds("x // trailing note\ny");
        assert_eq!(toks[1], (TokKind::LineComment, "// trailing note".into()));
        assert_eq!(toks[2].1, "y");
    }
}
