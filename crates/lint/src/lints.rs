//! The six project lints. Each pass walks the lexed [`Workspace`] and
//! appends [`Finding`]s; suppression is applied afterwards by the
//! engine so every pass stays a pure token-stream scan.

use crate::engine::{
    doc_index, extract_env_vars, extract_schemas, source_literal_index, Finding, Lint, SourceFile,
    Workspace,
};
use crate::lexer::TokKind;

fn finding(lint: Lint, file: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        lint,
        file: file.to_string(),
        line,
        col,
        message,
        suppressed: false,
        reason: None,
    }
}

/// `nondet-iter`: `HashMap`/`HashSet` anywhere in a result-affecting
/// crate's non-test code. Presence-based on purpose: proving at the
/// token level that a map is never iterated is impossible, and a
/// `BTreeMap` (or an `allow` with a written-down proof) costs little.
pub fn nondet_iter(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !ws.config.result_affecting.contains(&file.crate_name) {
            continue;
        }
        for (_, tok) in file.code_tokens() {
            if tok.kind == TokKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
                out.push(finding(
                    Lint::NondetIter,
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "`{}` in result-affecting crate `{}`: unordered iteration breaks \
                         bit-for-bit determinism; use `BTreeMap`/`BTreeSet` or a sorted `Vec`",
                        tok.text, file.crate_name
                    ),
                ));
            }
        }
    }
}

/// `wall-clock-in-sim`: `Instant::now` / `SystemTime` outside the
/// bench harness. Wall time read inside simulation logic makes runs
/// irreproducible; the few legitimate sites (budget guards, reported
/// wall seconds) carry explicit `allow` directives.
pub fn wall_clock_in_sim(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if ws.config.wall_clock_exempt.contains(&file.crate_name) {
            continue;
        }
        let toks: Vec<_> = file.code_tokens().collect();
        for (w, (_, tok)) in toks.iter().enumerate() {
            let hit = match tok.text.as_str() {
                "SystemTime" => true,
                "Instant" => {
                    toks.get(w + 1).is_some_and(|(_, t)| t.text == "::")
                        && toks.get(w + 2).is_some_and(|(_, t)| t.text == "now")
                }
                _ => false,
            };
            if hit {
                out.push(finding(
                    Lint::WallClockInSim,
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "`{}` outside the bench harness: wall-clock reads make simulated \
                         results irreproducible",
                        if tok.text == "SystemTime" {
                            "SystemTime"
                        } else {
                            "Instant::now"
                        }
                    ),
                ));
            }
        }
    }
}

/// `panic-in-lib`: panicking escape hatches in non-test, non-bin
/// library code. Library crates return typed errors; panics belong to
/// bins (which own their exit) and tests.
pub fn panic_in_lib(ws: &Workspace, out: &mut Vec<Finding>) {
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    for file in &ws.files {
        if file.is_bin {
            continue;
        }
        let toks: Vec<_> = file.code_tokens().collect();
        for (w, (_, tok)) in toks.iter().enumerate() {
            if tok.kind != TokKind::Ident {
                continue;
            }
            let as_method = |name: &str| {
                tok.text == name
                    && w > 0
                    && toks[w - 1].1.text == "."
                    && toks.get(w + 1).is_some_and(|(_, t)| t.text == "(")
            };
            let as_macro = MACROS.contains(&tok.text.as_str())
                && toks.get(w + 1).is_some_and(|(_, t)| t.text == "!");
            if as_method("unwrap") || as_method("expect") {
                out.push(finding(
                    Lint::PanicInLib,
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "`.{}()` in library code: return a typed error instead, or \
                         document why this cannot fail",
                        tok.text
                    ),
                ));
            } else if as_macro {
                out.push(finding(
                    Lint::PanicInLib,
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "`{}!` in library code: return a typed error instead, or \
                         document why this cannot be reached",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// `schema-registry`: every `camdn-*/N` identifier in non-test source
/// string literals must be documented in `docs/SCHEMAS.md`, and every
/// documented identifier must still occur in source.
pub fn schema_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(doc) = &ws.schemas_doc else { return };
    let in_source = source_literal_index(ws, extract_schemas);
    let in_docs = doc_index(doc, extract_schemas);
    for (schema, (file, line)) in &in_source {
        if !in_docs.contains_key(schema) {
            out.push(finding(
                Lint::SchemaRegistry,
                file,
                *line,
                1,
                format!("schema `{schema}` is not documented in {}", doc.rel_path),
            ));
        }
    }
    for (schema, line) in &in_docs {
        if !in_source.contains_key(schema) {
            out.push(finding(
                Lint::SchemaRegistry,
                &doc.rel_path,
                *line,
                1,
                format!("documented schema `{schema}` no longer occurs in any source literal"),
            ));
        }
    }
}

/// `env-registry`: every `CAMDN_*` env var named in non-test source
/// string literals must be documented in the README, and every
/// README-documented var must still occur in source.
pub fn env_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(doc) = &ws.readme else { return };
    let in_source = source_literal_index(ws, extract_env_vars);
    let in_docs = doc_index(doc, extract_env_vars);
    for (var, (file, line)) in &in_source {
        if !in_docs.contains_key(var) {
            out.push(finding(
                Lint::EnvRegistry,
                file,
                *line,
                1,
                format!(
                    "env var `{var}` is read here but not documented in {}",
                    doc.rel_path
                ),
            ));
        }
    }
    for (var, line) in &in_docs {
        if !in_source.contains_key(var) {
            out.push(finding(
                Lint::EnvRegistry,
                &doc.rel_path,
                *line,
                1,
                format!("documented env var `{var}` is no longer read by any source"),
            ));
        }
    }
}

/// `crate-hygiene`: every linted crate root must carry
/// `#![warn(missing_docs)]` and `#![deny(deprecated)]` so public-API
/// docs and deprecation debt cannot rot silently.
pub fn crate_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    const REQUIRED: [(&str, &str); 2] = [("warn", "missing_docs"), ("deny", "deprecated")];
    for member in &ws.members {
        let lib_rel = format!("crates/{member}/src/lib.rs");
        let Some(file) = ws.files.iter().find(|f| f.rel_path == lib_rel) else {
            continue;
        };
        for (outer, inner) in REQUIRED {
            if !has_inner_attr(file, outer, inner) {
                out.push(finding(
                    Lint::CrateHygiene,
                    &lib_rel,
                    1,
                    1,
                    format!("crate `{member}` is missing `#![{outer}({inner})]`"),
                ));
            }
        }
    }
}

/// Token-level search for `#![outer(inner)]` anywhere in the file.
fn has_inner_attr(file: &SourceFile, outer: &str, inner: &str) -> bool {
    let toks: Vec<&str> = file
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.text.as_str())
        .collect();
    toks.windows(8).any(|w| {
        w[0] == "#"
            && w[1] == "!"
            && w[2] == "["
            && w[3] == outer
            && w[4] == "("
            && w[5] == inner
            && w[6] == ")"
            && w[7] == "]"
    })
}
