//! `camdn-lint` — a dependency-free static-analysis pass over the
//! CaMDN workspace.
//!
//! Every result this repository ships rests on invariants nothing in
//! the type system checks: result-affecting code must never iterate an
//! unordered collection, simulation logic must never read the wall
//! clock, library crates must never panic their way out, and the
//! schema / env-var strings scattered through the code must stay in
//! sync with the registry documents. This crate enforces all of that
//! mechanically, at CI time, from a hand-rolled lexer up — no syn, no
//! regex, no proc-macro machinery — so the linter itself can never be
//! the thing that breaks an offline build.
//!
//! The pipeline: [`lexer`] turns each workspace source file into a
//! token stream; [`engine`] classifies files (crate, bin-vs-lib,
//! `#[cfg(test)]` regions), scans suppression directives, and drives
//! the passes in [`lints`]; [`report`] renders the findings as
//! compiler-style text and as a `camdn-lint-report/1` JSON artifact.
//!
//! See `docs/LINTS.md` for what each lint catches, why it matters for
//! this reproduction, and how to suppress a finding with a reason.

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod engine;
pub mod lexer;
pub mod lints;
pub mod report;

pub use engine::{run, Finding, Lint, LintConfig, LintError, LintReport};
