//! The `camdn-lint` command-line interface.
//!
//! Exit codes are stable and CI-facing:
//! * `0` — clean (suppressed findings are fine),
//! * `1` — at least one unsuppressed finding,
//! * `2` — usage or I/O error (the workspace could not be linted).

use std::path::PathBuf;
use std::process::ExitCode;

use camdn_lint::{engine, report, Lint, LintConfig};

const USAGE: &str = "\
camdn-lint — determinism & hygiene lints for the CaMDN workspace

USAGE:
    camdn-lint [--root DIR] [--json PATH] [--quiet] [--list]

OPTIONS:
    --root DIR    Workspace root (default: nearest ancestor with a
                  workspace Cargo.toml)
    --json PATH   Also write a camdn-lint-report/1 JSON report to PATH
    --quiet       Print only the summary line
    --list        List the lints and exit

EXIT CODES:
    0  clean    1  unsuppressed findings    2  usage or I/O error";

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        quiet: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ));
            }
            "--quiet" => args.quiet = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("camdn-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for lint in Lint::ALL {
            println!("{:<18} {}", lint.name(), lint.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root.map_or_else(discover_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("camdn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = LintConfig::new(&root);
    let lint_report = match engine::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("camdn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        let json = report::to_json(&lint_report, &root.display().to_string());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("camdn-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        for f in lint_report.unsuppressed() {
            println!("{}", report::text_line(f));
        }
    }
    println!("{}", report::summary_line(&lint_report));
    if lint_report.unsuppressed().next().is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
