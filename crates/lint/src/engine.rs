//! The lint engine: workspace discovery, file classification,
//! `#[cfg(test)]` region tracking, suppression directives, and the
//! driver that runs every lint and assembles a [`LintReport`].

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};
use crate::lints;

/// The marker that introduces a suppression directive inside a Rust
/// comment or a Markdown line. Kept out of this crate's own comments
/// so the linter does not trip over its own documentation.
const DIRECTIVE_MARKER: &str = "camdn-lint:";

/// The six project lints plus the engine's own directive check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `HashMap`/`HashSet` in a result-affecting crate.
    NondetIter,
    /// `Instant::now`/`SystemTime` outside the wall-clock allowlist.
    WallClockInSim,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in library code.
    PanicInLib,
    /// `camdn-*/N` schema literals out of sync with `docs/SCHEMAS.md`.
    SchemaRegistry,
    /// `CAMDN_*` env vars out of sync with the README.
    EnvRegistry,
    /// Required inner attributes missing from a crate root.
    CrateHygiene,
    /// A malformed or stale suppression directive.
    BadDirective,
}

impl Lint {
    /// Every lint, in report order.
    pub const ALL: [Lint; 7] = [
        Lint::NondetIter,
        Lint::WallClockInSim,
        Lint::PanicInLib,
        Lint::SchemaRegistry,
        Lint::EnvRegistry,
        Lint::CrateHygiene,
        Lint::BadDirective,
    ];

    /// The kebab-case name used in reports and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NondetIter => "nondet-iter",
            Lint::WallClockInSim => "wall-clock-in-sim",
            Lint::PanicInLib => "panic-in-lib",
            Lint::SchemaRegistry => "schema-registry",
            Lint::EnvRegistry => "env-registry",
            Lint::CrateHygiene => "crate-hygiene",
            Lint::BadDirective => "bad-directive",
        }
    }

    /// One-line description, shown by `camdn-lint --list`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::NondetIter => {
                "HashMap/HashSet in result-affecting crates (unordered iteration breaks determinism)"
            }
            Lint::WallClockInSim => {
                "Instant::now/SystemTime outside the wall-clock allowlist (bench crate)"
            }
            Lint::PanicInLib => {
                "unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test library code"
            }
            Lint::SchemaRegistry => {
                "camdn-*/N schema literals must match docs/SCHEMAS.md, both directions"
            }
            Lint::EnvRegistry => "CAMDN_* env vars must match the README, both directions",
            Lint::CrateHygiene => {
                "crate roots must carry #![warn(missing_docs)] and #![deny(deprecated)]"
            }
            Lint::BadDirective => "suppression directives must parse and must suppress something",
        }
    }

    fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, suppressed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Whether an `allow` directive covers this finding.
    pub suppressed: bool,
    /// The directive's reason, when suppressed.
    pub reason: Option<String>,
}

/// Everything one run of the engine produced.
#[derive(Debug)]
pub struct LintReport {
    /// All findings (suppressed ones included), sorted by
    /// (file, line, column, lint).
    pub findings: Vec<Finding>,
    /// Number of files read (sources plus registry docs).
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by a suppression directive.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// `(unsuppressed, suppressed)` counts for one lint.
    pub fn counts(&self, lint: Lint) -> (usize, usize) {
        let mut live = 0;
        let mut quiet = 0;
        for f in self.findings.iter().filter(|f| f.lint == lint) {
            if f.suppressed {
                quiet += 1;
            } else {
                live += 1;
            }
        }
        (live, quiet)
    }
}

/// Engine failure: the workspace itself could not be read. Findings
/// are never errors; this is strictly for I/O and layout problems.
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// What the engine was trying to read.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// The root `Cargo.toml` has no parseable `members` list.
    NoMembers(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, err } => write!(f, "cannot read {}: {err}", path.display()),
            LintError::NoMembers(p) => {
                write!(f, "no workspace members found in {}", p.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Configuration for one engine run. [`LintConfig::new`] fills in the
/// repository's invariants; tests point `root` at fixture trees.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Short crate names whose results must be bit-for-bit
    /// deterministic; `nondet-iter` fires only in these. The scope is
    /// crate-level and every `.rs` file under a member's `src/` is
    /// walked, so new modules inside a listed crate (e.g. the
    /// `runtime` scheduler core in `sched.rs` and its components) are
    /// covered automatically, with no list update needed.
    pub result_affecting: Vec<String>,
    /// Short crate names allowed to read the wall clock (the bench
    /// harness times real executions by design).
    pub wall_clock_exempt: Vec<String>,
    /// Workspace-relative path of the schema registry document.
    pub schemas_doc: String,
    /// Workspace-relative path of the env-var registry document.
    pub readme: String,
}

impl LintConfig {
    /// The repository defaults, rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let own = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        LintConfig {
            root: root.into(),
            result_affecting: own(&[
                "runtime", "core", "cache", "dram", "mapper", "sweep", "trace",
            ]),
            wall_clock_exempt: own(&["bench"]),
            schemas_doc: "docs/SCHEMAS.md".to_string(),
            readme: "README.md".to_string(),
        }
    }
}

/// A lexed workspace source file plus everything the lints need to
/// scope their checks.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// Short crate name (`runtime`, `bench`, …).
    pub crate_name: String,
    /// Whether this file belongs to a binary target (`src/bin/*` or
    /// `src/main.rs`).
    pub is_bin: bool,
    /// The token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]`/`#[test]`-gated item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Iterates non-comment tokens outside test-gated regions,
    /// yielding `(index, token)`.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(i, t)| {
            !self.in_test[*i] && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        })
    }

    /// The next non-comment token at or after `idx`, if any.
    pub fn next_code(&self, idx: usize) -> Option<&Token> {
        self.tokens[idx..]
            .iter()
            .find(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
    }
}

/// A registry document (`docs/SCHEMAS.md` or `README.md`).
pub struct DocFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Full text.
    pub text: String,
}

/// The lexed workspace handed to the lint passes.
pub struct Workspace {
    /// Lint configuration for this run.
    pub config: LintConfig,
    /// Short names of all linted member crates, sorted.
    pub members: Vec<String>,
    /// All lexed sources, sorted by path.
    pub files: Vec<SourceFile>,
    /// The schema registry, when present.
    pub schemas_doc: Option<DocFile>,
    /// The env-var registry, when present.
    pub readme: Option<DocFile>,
}

/// One parsed suppression directive.
struct Directive {
    file: String,
    line: u32,
    lint: Lint,
    reason: String,
    /// Lines this directive covers: its own and the next line that
    /// carries code (or content, in Markdown).
    targets: [u32; 2],
    used: bool,
}

/// Runs every lint over the workspace at `cfg.root`.
pub fn run(cfg: &LintConfig) -> Result<LintReport, LintError> {
    let ws = load_workspace(cfg)?;
    let (mut directives, mut findings) = collect_directives(&ws);

    lints::nondet_iter(&ws, &mut findings);
    lints::wall_clock_in_sim(&ws, &mut findings);
    lints::panic_in_lib(&ws, &mut findings);
    lints::schema_registry(&ws, &mut findings);
    lints::env_registry(&ws, &mut findings);
    lints::crate_hygiene(&ws, &mut findings);

    // Apply suppressions: a directive covers findings of its lint on
    // its own line or on the next content-bearing line of the file.
    for f in &mut findings {
        if f.lint == Lint::BadDirective {
            continue;
        }
        for d in directives.iter_mut() {
            if d.lint == f.lint && d.file == f.file && d.targets.contains(&f.line) {
                f.suppressed = true;
                f.reason = Some(d.reason.clone());
                d.used = true;
            }
        }
    }
    // A directive that suppresses nothing is stale — the code it
    // excused has moved or been fixed — and must be removed.
    for d in directives.iter().filter(|d| !d.used) {
        findings.push(Finding {
            lint: Lint::BadDirective,
            file: d.file.clone(),
            line: d.line,
            col: 1,
            message: format!(
                "stale suppression: no `{}` finding on line {} or the line below",
                d.lint, d.line
            ),
            suppressed: false,
            reason: None,
        });
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.lint.name()).cmp(&(&b.file, b.line, b.col, b.lint.name()))
    });
    let files_scanned =
        ws.files.len() + usize::from(ws.schemas_doc.is_some()) + usize::from(ws.readme.is_some());
    Ok(LintReport {
        findings,
        files_scanned,
    })
}

/// Reads and lexes every linted source file plus the registry docs.
pub fn load_workspace(cfg: &LintConfig) -> Result<Workspace, LintError> {
    let manifest = cfg.root.join("Cargo.toml");
    let text = read(&manifest)?;
    let mut members: Vec<String> = parse_members(&text)
        .into_iter()
        // Vendored stand-in crates are third-party API surface, not
        // simulator code; they are outside the lint's jurisdiction.
        .filter_map(|m| m.strip_prefix("crates/").map(str::to_string))
        .collect();
    members.sort();
    if members.is_empty() {
        return Err(LintError::NoMembers(manifest));
    }

    let mut files = Vec::new();
    for member in &members {
        let src_dir = cfg.root.join("crates").join(member).join("src");
        let mut paths = Vec::new();
        walk_rs(&src_dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let text = read(&path)?;
            let tokens = lex(&text);
            let in_test = test_flags(&tokens);
            let rel_path = rel(&cfg.root, &path);
            let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs");
            files.push(SourceFile {
                rel_path,
                crate_name: member.clone(),
                is_bin,
                tokens,
                in_test,
            });
        }
    }

    let doc = |rel_path: &str| -> Result<Option<DocFile>, LintError> {
        let path = cfg.root.join(rel_path);
        if !path.is_file() {
            return Ok(None);
        }
        Ok(Some(DocFile {
            rel_path: rel_path.to_string(),
            text: read(&path)?,
        }))
    };
    Ok(Workspace {
        config: cfg.clone(),
        members,
        files,
        schemas_doc: doc(&cfg.schemas_doc)?,
        readme: doc(&cfg.readme)?,
    })
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|err| LintError::Io {
        path: path.to_path_buf(),
        err,
    })
}

fn rel(root: &Path, path: &Path) -> String {
    let p = path.strip_prefix(root).unwrap_or(path);
    p.to_string_lossy().replace('\\', "/")
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|err| LintError::Io {
        path: dir.to_path_buf(),
        err,
    })?;
    for entry in entries {
        let entry = entry.map_err(|err| LintError::Io {
            path: dir.to_path_buf(),
            err,
        })?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts the `members = [...]` entries from a root `Cargo.toml`
/// without a TOML parser: quoted strings between the brackets.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(start) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = manifest[start + open..].find(']') else {
        return Vec::new();
    };
    let body = &manifest[start + open + 1..start + open + close];
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.split('#').next().unwrap_or("");
        let mut rest = line;
        while let Some(q0) = rest.find('"') {
            let Some(q1) = rest[q0 + 1..].find('"') else {
                break;
            };
            out.push(rest[q0 + 1..q0 + 1 + q1].to_string());
            rest = &rest[q0 + 2 + q1..];
        }
    }
    out
}

/// Marks every token inside a `#[cfg(test)]`- or `#[test]`-gated item.
///
/// The walk is structural but token-level: an attribute group is read
/// with bracket matching; if it gates on `test` (and is not a
/// `not(test)` / `cfg_attr` form), the item that follows — through its
/// matching closing brace, or to the first top-level `;` for brace-less
/// items — is marked, `mod tests { … }` bodies included.
pub fn test_flags(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let is_comment = |t: &Token| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment);
    let next_code = |mut i: usize| -> Option<usize> {
        while i < tokens.len() {
            if !is_comment(&tokens[i]) {
                return Some(i);
            }
            i += 1;
        }
        None
    };

    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(j) = next_code(i + 1) else { break };
        if tokens[j].text == "!" {
            // Inner attribute `#![…]`: skip its group, gates nothing.
            if let Some(open) = next_code(j + 1) {
                i = skip_bracket_group(tokens, open);
            } else {
                i = j + 1;
            }
            continue;
        }
        if tokens[j].text != "[" {
            i = j;
            continue;
        }
        // Outer attribute chain: fold the gating decision over every
        // consecutive `#[…]` group, then find the guarded item's end.
        let mut gated = false;
        let mut k = attr_start;
        loop {
            let Some(open) = next_code(k + 1) else {
                k += 1;
                break;
            };
            if tokens[k].text != "#" || tokens[open].text != "[" {
                k = if tokens[k].text == "#" { open } else { k };
                break;
            }
            let end = skip_bracket_group(tokens, open);
            gated |= attr_gates_test(&tokens[open..end]);
            let Some(next) = next_code(end) else {
                k = end;
                break;
            };
            if tokens[next].text == "#" {
                k = next;
            } else {
                k = next;
                break;
            }
        }
        if !gated {
            i = k;
            continue;
        }
        // Mark from the first `#` through the end of the gated item.
        let mut depth = 0usize;
        let mut end = k;
        while end < tokens.len() {
            let t = &tokens[end];
            if !is_comment(t) {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            end += 1;
        }
        let end = end.min(tokens.len().saturating_sub(1));
        for flag in flags.iter_mut().take(end + 1).skip(attr_start) {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// Advances past a bracket group starting at `open` (which must be a
/// `[` token), returning the index just after the matching `]`.
fn skip_bracket_group(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Does one `[…]` attribute group gate its item on `cfg(test)`?
fn attr_gates_test(group: &[Token]) -> bool {
    let idents: Vec<&str> = group
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => {
            // `cfg(test)`, `cfg(all(test, …))` gate; `cfg(not(test))`
            // emphatically does not (that code is the production
            // build). A `not` anywhere makes us conservatively treat
            // the region as production code.
            idents.contains(&"test") && !idents.contains(&"not")
        }
        _ => false,
    }
}

/// Scans Rust comments and Markdown lines for suppression directives.
/// Malformed directives become `bad-directive` findings immediately.
fn collect_directives(ws: &Workspace) -> (Vec<Directive>, Vec<Finding>) {
    let mut dirs = Vec::new();
    let mut findings = Vec::new();
    for file in &ws.files {
        for (i, tok) in tokens_with_marker(file) {
            let target = file.tokens[i + 1..]
                .iter()
                .find(|t| {
                    !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                        && t.line > tok.line
                })
                .map_or(tok.line, |t| t.line);
            push_directive(
                &file.rel_path,
                tok.line,
                &tok.text,
                target,
                &mut dirs,
                &mut findings,
            );
        }
    }
    for doc in [&ws.schemas_doc, &ws.readme].into_iter().flatten() {
        let lines: Vec<&str> = doc.text.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if !line.contains(DIRECTIVE_MARKER) {
                continue;
            }
            let lineno = (idx + 1) as u32;
            let target = lines[idx + 1..]
                .iter()
                .position(|l| !l.trim().is_empty())
                .map_or(lineno, |off| lineno + 1 + off as u32);
            push_directive(
                &doc.rel_path,
                lineno,
                line,
                target,
                &mut dirs,
                &mut findings,
            );
        }
    }
    (dirs, findings)
}

fn tokens_with_marker(file: &SourceFile) -> Vec<(usize, &Token)> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.text.contains(DIRECTIVE_MARKER)
        })
        .collect()
}

fn push_directive(
    file: &str,
    line: u32,
    text: &str,
    target: u32,
    dirs: &mut Vec<Directive>,
    findings: &mut Vec<Finding>,
) {
    match parse_directive(text) {
        Some((lint, reason)) => dirs.push(Directive {
            file: file.to_string(),
            line,
            lint,
            reason,
            targets: [line, target],
            used: false,
        }),
        None => findings.push(Finding {
            lint: Lint::BadDirective,
            file: file.to_string(),
            line,
            col: 1,
            message: format!(
                "malformed directive; expected `{DIRECTIVE_MARKER} allow(<lint>, reason = \"…\")` \
                 with a known lint name and a non-empty reason"
            ),
            suppressed: false,
            reason: None,
        }),
    }
}

/// Parses `… allow(<lint>, reason = "<why>") …` out of a directive
/// comment. Returns `None` when anything about it is off: unknown lint
/// name, missing or empty reason, wrong shape.
fn parse_directive(text: &str) -> Option<(Lint, String)> {
    let at = text.find(DIRECTIVE_MARKER)?;
    let rest = text[at + DIRECTIVE_MARKER.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (name, rest) = rest.split_once(',')?;
    let lint = Lint::from_name(name.trim())?;
    let rest = rest.trim_start().strip_prefix("reason")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let (reason, tail) = rest.split_once('"')?;
    let tail = tail.trim_start();
    if reason.trim().is_empty() || !tail.starts_with(')') {
        return None;
    }
    Some((lint, reason.trim().to_string()))
}

/// Extracts `camdn-<name>/<version>` schema identifiers from `text`.
/// A match must start at a word boundary (the char before `camdn-`
/// may not be part of an identifier-ish run).
pub fn extract_schemas(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let needle: Vec<char> = "camdn-".chars().collect();
    let mut i = 0;
    while i + needle.len() < chars.len() {
        if chars[i..i + needle.len()] != needle[..]
            || (i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '-'))
        {
            i += 1;
            continue;
        }
        let mut j = i + needle.len();
        while j < chars.len()
            && (chars[j].is_ascii_lowercase() || chars[j].is_ascii_digit() || chars[j] == '-')
        {
            j += 1;
        }
        if j == i + needle.len() || j >= chars.len() || chars[j] != '/' {
            i += 1;
            continue;
        }
        let name_end = j;
        j += 1;
        let ver_start = j;
        while j < chars.len() && chars[j].is_ascii_digit() {
            j += 1;
        }
        if j == ver_start {
            i = name_end;
            continue;
        }
        out.push(chars[i..j].iter().collect());
        i = j;
    }
    out
}

/// Extracts `CAMDN_<NAME>` env-var identifiers from `text`. The name
/// must be non-empty, and the match must start at a word boundary.
pub fn extract_env_vars(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let needle: Vec<char> = "CAMDN_".chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + needle.len() < chars.len() {
        if chars[i..i + needle.len()] != needle[..]
            || (i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_'))
        {
            i += 1;
            continue;
        }
        let mut j = i + needle.len();
        while j < chars.len()
            && (chars[j].is_ascii_uppercase() || chars[j].is_ascii_digit() || chars[j] == '_')
        {
            j += 1;
        }
        // Require at least one real character after the prefix so the
        // bare prefix (e.g. in this very function) never matches.
        if chars[i + needle.len()..j]
            .iter()
            .any(|c| c.is_ascii_alphanumeric())
        {
            out.push(chars[i..j].iter().collect());
        }
        i = j.max(i + 1);
    }
    out
}

/// Sorted first occurrence of each extracted identifier across all
/// non-test string literals of the workspace sources.
pub fn source_literal_index(
    ws: &Workspace,
    extract: fn(&str) -> Vec<String>,
) -> BTreeMap<String, (String, u32)> {
    let mut index: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for file in &ws.files {
        for (i, tok) in file.tokens.iter().enumerate() {
            if tok.kind != TokKind::StrLit || file.in_test[i] {
                continue;
            }
            for id in extract(&tok.text) {
                index
                    .entry(id)
                    .or_insert_with(|| (file.rel_path.clone(), tok.line));
            }
        }
    }
    index
}

/// Sorted first occurrence of each extracted identifier per line of a
/// registry document.
pub fn doc_index(doc: &DocFile, extract: fn(&str) -> Vec<String>) -> BTreeMap<String, u32> {
    let mut index = BTreeMap::new();
    for (i, line) in doc.text.lines().enumerate() {
        for id in extract(line) {
            index.entry(id).or_insert((i + 1) as u32);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse() {
        let toml = r#"
[workspace]
members = [
    "crates/runtime", # comment
    "crates/core",
    "vendor/serde",
]
"#;
        assert_eq!(
            parse_members(toml),
            vec!["crates/runtime", "crates/core", "vendor/serde"]
        );
    }

    #[test]
    fn directive_parse_roundtrip() {
        let ok = "// camdn-lint: allow(panic-in-lib, reason = \"lock poisoning only\")";
        let (lint, reason) = parse_directive(ok).unwrap();
        assert_eq!(lint, Lint::PanicInLib);
        assert_eq!(reason, "lock poisoning only");
        // Markdown form.
        let md = "<!-- camdn-lint: allow(schema-registry, reason = \"historical\") -->";
        assert_eq!(parse_directive(md).unwrap().0, Lint::SchemaRegistry);
        // Unknown lint, empty reason, missing close paren: all rejected.
        assert!(parse_directive("// camdn-lint: allow(bogus, reason = \"x\")").is_none());
        assert!(parse_directive("// camdn-lint: allow(panic-in-lib, reason = \"\")").is_none());
        assert!(parse_directive("// camdn-lint: allow(panic-in-lib, reason = \"x\"").is_none());
    }

    #[test]
    fn test_flags_cover_gated_items() {
        let src = r#"
fn live() { work(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}
fn also_live() {}
"#;
        let toks = lex(src);
        let flags = test_flags(&toks);
        let flagged: Vec<&str> = toks
            .iter()
            .zip(&flags)
            .filter(|(_, f)| **f)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(flagged.contains(&"tests"));
        assert!(flagged.contains(&"assert"));
        assert!(!flagged.contains(&"live"));
        assert!(!flagged.contains(&"also_live"));
    }

    #[test]
    fn not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let toks = lex(src);
        let flags = test_flags(&toks);
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn test_attr_on_fn_gates_it() {
        let src = "#[test]\nfn check() { boom(); }\nfn open() {}";
        let toks = lex(src);
        let flags = test_flags(&toks);
        let gated: Vec<&str> = toks
            .iter()
            .zip(&flags)
            .filter(|(_, f)| **f)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(gated.contains(&"boom"));
        assert!(!gated.contains(&"open"));
    }

    #[test]
    fn should_panic_does_not_gate_alone_but_chains_do() {
        // `#[test] #[should_panic]` chain: still gated via #[test].
        let src = "#[test]\n#[should_panic]\nfn t() { f(); }";
        let flags = test_flags(&lex(src));
        assert!(flags.iter().any(|f| *f));
        // A lone non-test attribute gates nothing.
        let src = "#[inline]\nfn f() { g(); }";
        let flags = test_flags(&lex(src));
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn schema_extraction_boundaries() {
        assert_eq!(
            extract_schemas("\"schema\": \"camdn-bench-engine/1\""),
            vec!["camdn-bench-engine/1"]
        );
        // Marker-like text without a version is not a schema.
        assert!(extract_schemas("camdn-lint: allow(x)").is_empty());
        // Mid-word matches are rejected.
        assert!(extract_schemas("xcamdn-foo/1").is_empty());
        assert_eq!(
            extract_schemas("`camdn-a/1` and camdn-b/23."),
            vec!["camdn-a/1", "camdn-b/23"]
        );
    }

    #[test]
    fn env_extraction_boundaries() {
        assert_eq!(
            extract_env_vars("set CAMDN_QUICK=1 or CAMDN_SCALING_CELLS"),
            vec!["CAMDN_QUICK", "CAMDN_SCALING_CELLS"]
        );
        // The bare prefix and mid-word runs do not match.
        assert!(extract_env_vars("the CAMDN_ prefix").is_empty());
        assert!(extract_env_vars("XCAMDN_FOO").is_empty());
    }
}
