//! Report rendering: the `camdn-lint-report/1` JSON document and the
//! compiler-style text listing. JSON is hand-rolled (this crate is
//! dependency-free) with deterministic field and finding order.

use std::fmt::Write as _;

use crate::engine::{Finding, Lint, LintReport};

/// Escapes a string for a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report (schema `camdn-lint-report/1`).
///
/// Shape: a `totals` block, per-lint finding counts under `lints`
/// (every lint present, fired or not), and the full sorted `findings`
/// array — suppressed findings included, carrying their reasons, so
/// the artifact records *why* each exception exists.
pub fn to_json(report: &LintReport, root: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"camdn-lint-report/1\",");
    let _ = writeln!(s, "  \"root\": \"{}\",", esc(root));
    let _ = writeln!(s, "  \"files_scanned\": {},", report.files_scanned);
    let total = report.findings.len();
    let live = report.unsuppressed().count();
    let _ = writeln!(
        s,
        "  \"totals\": {{\"findings\": {total}, \"unsuppressed\": {live}, \"suppressed\": {}}},",
        total - live
    );
    s.push_str("  \"lints\": {\n");
    for (i, lint) in Lint::ALL.into_iter().enumerate() {
        let (u, q) = report.counts(lint);
        let comma = if i + 1 == Lint::ALL.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    \"{}\": {{\"unsuppressed\": {u}, \"suppressed\": {q}}}{comma}",
            lint.name()
        );
    }
    s.push_str("  },\n");
    s.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 == report.findings.len() {
            ""
        } else {
            ","
        };
        let reason = match &f.reason {
            Some(r) => format!("\"{}\"", esc(r)),
            None => "null".to_string(),
        };
        let _ = writeln!(
            s,
            "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"suppressed\": {}, \"reason\": {reason}, \"message\": \"{}\"}}{comma}",
            f.lint.name(),
            esc(&f.file),
            f.line,
            f.col,
            f.suppressed,
            esc(&f.message),
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders one finding as a `file:line:col: lint: message` line.
pub fn text_line(f: &Finding) -> String {
    format!(
        "{}:{}:{}: {}: {}",
        f.file,
        f.line,
        f.col,
        f.lint.name(),
        f.message
    )
}

/// Renders the one-line run summary.
pub fn summary_line(report: &LintReport) -> String {
    let live = report.unsuppressed().count();
    let quiet = report.findings.len() - live;
    format!(
        "camdn-lint: {} files scanned, {live} unsuppressed finding{} ({quiet} suppressed)",
        report.files_scanned,
        if live == 1 { "" } else { "s" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Finding, Lint, LintReport};

    fn sample() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    lint: Lint::PanicInLib,
                    file: "crates/x/src/lib.rs".into(),
                    line: 3,
                    col: 9,
                    message: "`.unwrap()` in library code".into(),
                    suppressed: false,
                    reason: None,
                },
                Finding {
                    lint: Lint::NondetIter,
                    file: "crates/x/src/lib.rs".into(),
                    line: 7,
                    col: 1,
                    message: "`HashMap` with \"quotes\"".into(),
                    suppressed: true,
                    reason: Some("lookup only".into()),
                },
            ],
            files_scanned: 2,
        }
    }

    #[test]
    fn json_counts_and_escaping() {
        let json = to_json(&sample(), ".");
        assert!(json.contains("\"schema\": \"camdn-lint-report/1\""));
        assert!(
            json.contains("\"totals\": {\"findings\": 2, \"unsuppressed\": 1, \"suppressed\": 1}")
        );
        assert!(json.contains("\"panic-in-lib\": {\"unsuppressed\": 1, \"suppressed\": 0}"));
        assert!(json.contains("\"reason\": \"lookup only\""));
        assert!(json.contains("\\\"quotes\\\""));
        // Every lint appears even with zero findings.
        assert!(json.contains("\"crate-hygiene\": {\"unsuppressed\": 0, \"suppressed\": 0}"));
    }

    #[test]
    fn text_rendering() {
        let r = sample();
        assert_eq!(
            text_line(&r.findings[0]),
            "crates/x/src/lib.rs:3:9: panic-in-lib: `.unwrap()` in library code"
        );
        assert!(summary_line(&r).contains("1 unsuppressed finding (1 suppressed)"));
    }
}
