//! QoS showdown: MoCA vs AuRORA vs CaMDN under tight latency targets
//! (the Fig. 9 setting at QoS-M), reporting SLA satisfaction, system
//! throughput and fairness.
//!
//! ```text
//! cargo run --release --example qos_showdown
//! ```

use camdn::models::zoo;
use camdn::runtime::{qos_metrics, simulate, EngineConfig, PolicyKind};

fn main() {
    let tenants = zoo::all(); // one task per Table I model, 16 NPUs

    // Isolated runs calibrate normalized progress.
    let iso: Vec<f64> = tenants
        .iter()
        .map(|m| {
            let cfg = EngineConfig {
                rounds_per_task: 2,
                warmup_rounds: 1,
                ..EngineConfig::speedup(PolicyKind::SharedBaseline)
            };
            simulate(cfg, &[m.clone()]).tasks[0].mean_latency_ms
        })
        .collect();

    println!("8 tenants, QoS-M deadlines (1.0x Table I targets)\n");
    println!(
        "{:16} {:>10} {:>8} {:>10}",
        "policy", "SLA rate", "STP", "fairness"
    );
    for policy in [PolicyKind::Moca, PolicyKind::Aurora, PolicyKind::CamdnFull] {
        let cfg = EngineConfig {
            rounds_per_task: 3,
            warmup_rounds: 1,
            ..EngineConfig::qos(policy, 1.0)
        };
        let r = simulate(cfg, &tenants);
        let q = qos_metrics(&r, &iso);
        println!(
            "{:16} {:>9.1}% {:>8.2} {:>10.2}",
            policy.label(),
            100.0 * q.sla_rate,
            q.stp,
            q.fairness
        );
    }
}
