//! Tiny timing harness exposing the subset of the Criterion API used by
//! `crates/bench/benches/*` (offline stand-in; see `vendor/README.md`).
//!
//! Each benchmark closure is run a fixed number of iterations and the
//! mean wall-clock time is printed. Numbers are indicative, not
//! statistically rigorous — use the real Criterion for that.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `f` for the configured iteration count, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        let total = start.elapsed();
        let mean_us = total.as_secs_f64() * 1e6 / self.iters as f64;
        println!("    {:>12.2} us/iter  ({} iters)", mean_us, self.iters);
    }
}

/// Top-level harness handle (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Overrides the iteration count (API parity with
    /// `criterion::Criterion::sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {name}");
        let mut b = Bencher {
            iters: self.effective_iters(),
        };
        f(&mut b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }

    fn effective_iters(&self) -> u64 {
        if self.sample_size > 0 {
            self.sample_size
        } else {
            10
        }
    }
}

/// Group of related benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("  bench {name}");
        let mut b = Bencher {
            iters: self
                .sample_size
                .unwrap_or_else(|| self.parent.effective_iters()),
        };
        f(&mut b);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
