//! No-op stand-in for `serde_derive` (offline builds).
//!
//! The derives accept the same helper attributes as the real macros and
//! expand to nothing; the sibling `serde` stand-in blanket-implements
//! the marker traits, so every `#[derive(Serialize, Deserialize)]` in
//! the workspace compiles unchanged.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
