//! Marker-trait stand-in for `serde` (offline builds).
//!
//! The workspace derives `Serialize`/`Deserialize` on its public config
//! and result types so downstream users can plug in the real serde; the
//! repo itself never serializes, so blanket marker impls are enough.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
